//! Property-based tests (proptest): algebraic laws of the evaluator, the
//! Prop 2.1 derived operations against `std` set semantics, and the TC
//! queries against the graph baselines.

use nra_core::builder::*;
use nra_core::derived;
use nra_core::queries;
use nra_core::types::Type;
use nra_core::value::Value;
use nra_eval::{eval, evaluate, evaluate_lazy, EvalConfig};
use nra_graph::{graph_to_value, tc, DiGraph};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn nat_set() -> impl Strategy<Value = BTreeSet<u64>> {
    proptest::collection::btree_set(0u64..12, 0..8)
}

fn small_relation() -> impl Strategy<Value = BTreeSet<(u64, u64)>> {
    proptest::collection::btree_set((0u64..6, 0u64..6), 0..9)
}

fn to_value(s: &BTreeSet<u64>) -> Value {
    Value::set(s.iter().copied().map(Value::nat))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flatten_after_map_sng_is_identity(s in nat_set()) {
        let v = to_value(&s);
        let f = compose(flatten(), map(sng()));
        prop_assert_eq!(eval(&f, &v).unwrap(), v);
    }

    #[test]
    fn union_is_set_union(a in nat_set(), b in nat_set()) {
        let out = eval(&union(), &Value::pair(to_value(&a), to_value(&b))).unwrap();
        let expect: BTreeSet<u64> = a.union(&b).copied().collect();
        prop_assert_eq!(out, to_value(&expect));
    }

    #[test]
    fn difference_and_intersection_match_std(a in nat_set(), b in nat_set()) {
        let input = Value::pair(to_value(&a), to_value(&b));
        let diff = eval(&derived::difference(&Type::Nat), &input).unwrap();
        let expect: BTreeSet<u64> = a.difference(&b).copied().collect();
        prop_assert_eq!(diff, to_value(&expect));
        let inter = eval(&derived::intersect(&Type::Nat), &input).unwrap();
        let expect: BTreeSet<u64> = a.intersection(&b).copied().collect();
        prop_assert_eq!(inter, to_value(&expect));
    }

    #[test]
    fn subset_matches_std(a in nat_set(), b in nat_set()) {
        let input = Value::pair(to_value(&a), to_value(&b));
        let out = eval(&derived::subset(&Type::Nat), &input).unwrap();
        prop_assert_eq!(out, Value::Bool(a.is_subset(&b)));
    }

    #[test]
    fn member_matches_std(x in 0u64..12, s in nat_set()) {
        let input = Value::pair(Value::nat(x), to_value(&s));
        let out = eval(&derived::member(&Type::Nat), &input).unwrap();
        prop_assert_eq!(out, Value::Bool(s.contains(&x)));
    }

    #[test]
    fn structural_equality_matches_derived_equality(
        a in small_relation(),
        b in small_relation(),
    ) {
        let va = Value::relation(a.iter().copied());
        let vb = Value::relation(b.iter().copied());
        let eq = derived::eq_at(&Type::nat_rel());
        let out = eval(&eq, &Value::pair(va.clone(), vb.clone())).unwrap();
        prop_assert_eq!(out, Value::Bool(va == vb));
    }

    #[test]
    fn select_partitions_the_input(s in small_relation()) {
        let v = Value::relation(s.iter().copied());
        let e = Type::prod(Type::Nat, Type::Nat);
        let keep = eval(&derived::select(eq_nat(), e.clone()), &v).unwrap();
        let drop = eval(&derived::select(derived::pnot(eq_nat()), e.clone()), &v).unwrap();
        let merged = eval(&union(), &Value::pair(keep.clone(), drop.clone())).unwrap();
        prop_assert_eq!(merged, v);
        // and the parts are disjoint
        let inter = eval(&derived::intersect(&e), &Value::pair(keep, drop)).unwrap();
        prop_assert_eq!(inter, Value::empty_set());
    }

    #[test]
    fn cartprod_cardinality(a in nat_set(), b in nat_set()) {
        let out = eval(&derived::cartprod(), &Value::pair(to_value(&a), to_value(&b))).unwrap();
        prop_assert_eq!(out.cardinality(), Some(a.len() * b.len()));
    }

    #[test]
    fn powerset_has_2_to_k_subsets(s in proptest::collection::btree_set(0u64..20, 0..7)) {
        let v = to_value(&s);
        let out = eval(&powerset(), &v).unwrap();
        prop_assert_eq!(out.cardinality(), Some(1usize << s.len()));
        // every subset is indeed a subset
        for sub in out.as_set().unwrap() {
            let subset = sub.as_set().unwrap();
            prop_assert!(subset.iter().all(|x| v.as_set().unwrap().contains(x)));
        }
    }

    #[test]
    fn derived_powerset_m_matches_primitive(
        s in proptest::collection::btree_set(0u64..9, 0..5),
        m in 0u64..4,
    ) {
        let v = to_value(&s);
        let term = derived::powerset_m(m, &Type::Nat);
        prop_assert_eq!(
            eval(&term, &v).unwrap(),
            eval(&powerset_m_prim(m), &v).unwrap()
        );
    }

    #[test]
    fn nest_unnest_roundtrip(s in small_relation()) {
        let v = Value::relation(s.iter().copied());
        let nested = eval(&derived::nest(&Type::Nat, &Type::Nat), &v).unwrap();
        let back = eval(&derived::unnest(), &nested).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn tc_while_matches_graph_baselines(s in small_relation()) {
        let g = DiGraph::from_edges(s.iter().copied());
        let out = eval(&queries::tc_while(), &graph_to_value(&g)).unwrap();
        prop_assert_eq!(out, graph_to_value(&tc(&g)));
    }

    #[test]
    fn tc_paths_matches_graph_baselines(
        s in proptest::collection::btree_set((0u64..5, 0u64..5), 0..8),
    ) {
        let g = DiGraph::from_edges(s.iter().copied());
        let out = eval(&queries::tc_paths(), &graph_to_value(&g)).unwrap();
        prop_assert_eq!(out, graph_to_value(&tc(&g)));
    }

    #[test]
    fn lazy_strategy_agrees_with_eager(
        s in proptest::collection::btree_set((0u64..5, 0u64..5), 0..7),
    ) {
        let g = DiGraph::from_edges(s.iter().copied());
        let v = graph_to_value(&g);
        let cfg = EvalConfig::default();
        for q in [queries::tc_paths(), queries::siblings_powerset()] {
            let eager_out = evaluate(&q, &v, &cfg).result.unwrap();
            let lazy_out = evaluate_lazy(&q, &v, &cfg).result.unwrap();
            prop_assert_eq!(eager_out, lazy_out);
        }
    }

    #[test]
    fn traced_evaluation_is_consistent(s in small_relation()) {
        let v = Value::relation(s.iter().copied());
        let q = queries::tc_step();
        let cfg = EvalConfig::default();
        let plain = evaluate(&q, &v, &cfg);
        let traced = nra_eval::evaluate_traced(&q, &v, &cfg);
        let tree = traced.result.unwrap();
        prop_assert_eq!(tree.output.clone(), plain.result.unwrap());
        prop_assert_eq!(tree.node_count(), plain.stats.nodes);
        prop_assert_eq!(tree.max_object_size(), plain.stats.max_object_size);
    }

    #[test]
    fn complexity_monotone_under_budget(s in small_relation()) {
        // a run that succeeds under a budget reports the same stats as an
        // unbudgeted run
        let v = Value::relation(s.iter().copied());
        let q = queries::tc_step();
        let free = evaluate(&q, &v, &EvalConfig::default());
        let budget = free.stats.max_object_size;
        let bounded = evaluate(&q, &v, &EvalConfig::with_space_budget(budget));
        prop_assert!(bounded.result.is_ok());
        prop_assert_eq!(bounded.stats, free.stats);
        // one less and it must fail (whenever the budget is binding)
        if budget > 1 {
            let tight = evaluate(&q, &v, &EvalConfig::with_space_budget(budget - 1));
            prop_assert!(tight.result.is_err());
        }
    }

    #[test]
    fn parser_roundtrips_programmatic_queries(m in 0u64..4) {
        for q in [
            queries::tc_paths_approx(m),
            queries::tc_while(),
            queries::siblings_direct(),
            derived::powerset_m(m, &Type::Nat),
        ] {
            let text = q.to_string();
            let parsed = nra_core::parser::parse_expr(&text).unwrap();
            prop_assert_eq!(parsed, q);
        }
    }
}
