//! Differential tests for the arena-native set algebra: the sorted-merge
//! operations on `ValueArena` (`set_union` / `set_intersection` /
//! `set_difference` / `is_subset` / `set_contains` /
//! `set_from_sorted_merge`) must agree with the *tree-side* semantics —
//! the Prop 2.1 `derived` terms run through the evaluator, and the
//! `BTreeSet` algebra on resolved values — on randomized relations.

use nra_core::value::intern;
use nra_core::{builder, derived, Type, Value};
use nra_eval::eval;
use nra_testkit::{check, Rng};
use std::collections::BTreeSet;

const CASES: u64 = 150;

fn edge_ty() -> Type {
    Type::prod(Type::Nat, Type::Nat)
}

/// Two random relations as tree values plus their interned handles.
fn random_pair(rng: &mut Rng) -> (Value, Value, intern::VId, intern::VId) {
    let a = Value::relation(rng.relation(6, 7));
    let b = Value::relation(rng.relation(6, 7));
    let (ia, ib) = (intern::intern(&a), intern::intern(&b));
    (a, b, ia, ib)
}

#[test]
fn merge_union_agrees_with_the_primitive_and_btreeset() {
    check("merge_union_agrees", CASES, |_, rng| {
        let (a, b, ia, ib) = random_pair(rng);
        let merged = intern::set_union(ia, ib).expect("sets");
        // the ∪ primitive through the evaluator…
        let via_eval = eval(&builder::union(), &Value::pair(a.clone(), b.clone())).unwrap();
        assert_eq!(intern::resolve(merged), via_eval, "{a} ∪ {b}");
        // …and the BTreeSet union on the tree side
        let tree: BTreeSet<Value> = a
            .as_set()
            .unwrap()
            .iter()
            .chain(b.as_set().unwrap().iter())
            .cloned()
            .collect();
        assert_eq!(intern::resolve(merged), Value::Set(tree));
    });
}

#[test]
fn merge_intersection_agrees_with_derived() {
    check("merge_intersection_agrees", CASES, |_, rng| {
        let (a, b, ia, ib) = random_pair(rng);
        let merged = intern::set_intersection(ia, ib).expect("sets");
        let via_derived = eval(
            &derived::intersect(&edge_ty()),
            &Value::pair(a.clone(), b.clone()),
        )
        .unwrap();
        assert_eq!(intern::resolve(merged), via_derived, "{a} ∩ {b}");
    });
}

#[test]
fn merge_difference_agrees_with_derived() {
    check("merge_difference_agrees", CASES, |_, rng| {
        let (a, b, ia, ib) = random_pair(rng);
        let merged = intern::set_difference(ia, ib).expect("sets");
        let via_derived = eval(
            &derived::difference(&edge_ty()),
            &Value::pair(a.clone(), b.clone()),
        )
        .unwrap();
        assert_eq!(intern::resolve(merged), via_derived, "{a} ∖ {b}");
    });
}

#[test]
fn merge_subset_and_membership_agree_with_derived() {
    check("merge_subset_membership_agree", CASES, |_, rng| {
        let (a, b, ia, ib) = random_pair(rng);
        let subset = intern::is_subset(ia, ib).expect("sets");
        let via_derived = eval(
            &derived::subset(&edge_ty()),
            &Value::pair(a.clone(), b.clone()),
        )
        .unwrap();
        assert_eq!(Value::Bool(subset), via_derived, "{a} ⊆ {b}");

        // membership of each element of a ∪ b, against ∈ at the edge type
        for edge in a.as_set().unwrap().iter().chain(b.as_set().unwrap()) {
            let contains = intern::set_contains(ib, intern::intern(edge)).expect("set");
            let via_member = eval(
                &derived::member(&edge_ty()),
                &Value::pair(edge.clone(), b.clone()),
            )
            .unwrap();
            assert_eq!(Value::Bool(contains), via_member, "{edge} ∈ {b}");
        }
    });
}

#[test]
fn nary_merge_agrees_with_flatten() {
    check("nary_merge_agrees_with_flatten", CASES, |_, rng| {
        // k relations; flatten their set-of-sets through μ and compare
        // with the n-ary merge over the same handles
        let k = rng.usize_below(5);
        let parts: Vec<Value> = (0..k)
            .map(|_| Value::relation(rng.relation(5, 5)))
            .collect();
        let handles: Vec<_> = parts.iter().map(intern::intern).collect();
        let merged = intern::set_from_sorted_merge(&handles).expect("sets");
        let via_flatten = eval(&builder::flatten(), &Value::set(parts.clone())).unwrap();
        assert_eq!(intern::resolve(merged), via_flatten, "μ over {k} parts");
    });
}

#[test]
fn merge_delta_is_union_plus_difference_on_random_sets() {
    check("merge_delta_is_union_plus_difference", CASES, |_, rng| {
        let (a, b, ia, ib) = random_pair(rng);
        let (union, fresh) = intern::set_merge_delta(ia, ib).expect("sets");
        // the one-pass result against the two separate merge ops…
        assert_eq!(union, intern::set_union(ia, ib).unwrap(), "{a} ∪ {b}");
        assert_eq!(fresh, intern::set_difference(ib, ia).unwrap(), "{b} ∖ {a}");
        // …against the Prop 2.1 derived terms through the evaluator…
        let via_union = eval(&builder::union(), &Value::pair(a.clone(), b.clone())).unwrap();
        let via_diff = eval(
            &derived::difference(&edge_ty()),
            &Value::pair(b.clone(), a.clone()),
        )
        .unwrap();
        assert_eq!(intern::resolve(union), via_union);
        assert_eq!(intern::resolve(fresh), via_diff);
        // …and the semi-naive superset test: old ⊆ new ⇔ union == new
        assert_eq!(union == ib, intern::is_subset(ia, ib).unwrap(), "{a} ⊆ {b}");
    });
}

#[test]
fn frontier_merge_agrees_with_iterated_binary_union() {
    check("frontier_merge_agrees_with_union", CASES, |_, rng| {
        let k = rng.usize_below(5);
        let base = Value::relation(rng.relation(6, 7));
        let ibase = intern::intern(&base);
        let parts: Vec<Value> = (0..k)
            .map(|_| Value::relation(rng.relation(5, 5)))
            .collect();
        let handles: Vec<_> = parts.iter().map(intern::intern).collect();
        let merged = intern::set_merge_frontier(ibase, &handles).expect("sets");
        // iterated binary union over the same handles…
        let mut expect = ibase;
        for &h in &handles {
            expect = intern::set_union(expect, h).unwrap();
        }
        assert_eq!(merged, expect, "μ-fold over {k} frontiers");
        // …and the ∪ primitive through the evaluator, folded left
        let mut tree = base;
        for p in &parts {
            tree = eval(&builder::union(), &Value::pair(tree, p.clone())).unwrap();
        }
        assert_eq!(intern::resolve(merged), tree);
    });
}

#[test]
fn merge_ops_refuse_non_sets() {
    let n = intern::nat(3);
    let s = intern::chain(2);
    assert_eq!(intern::set_union(n, s), None);
    assert_eq!(intern::set_intersection(s, n), None);
    assert_eq!(intern::set_difference(n, n), None);
    assert_eq!(intern::is_subset(n, s), None);
    assert_eq!(intern::set_contains(n, s), None);
    assert_eq!(intern::set_from_sorted_merge(&[s, n]), None);
    assert_eq!(intern::set_merge_delta(n, s), None);
    assert_eq!(intern::set_merge_delta(s, n), None);
    assert_eq!(intern::set_merge_frontier(n, &[s]), None);
    assert_eq!(intern::set_merge_frontier(s, &[n]), None);
}
