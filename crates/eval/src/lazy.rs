//! A streaming ("lazy") evaluation strategy for `powerset`.
//!
//! §3 scopes the lower bound precisely: "our main result will depend (1) on
//! the particular evaluation strategy and (2) on the complexity measure. …
//! it is not obvious whether it still holds for a lazy evaluation
//! strategy." This module makes that caveat concrete: `powerset` results
//! are represented *symbolically* (as "the subsets of this base set") and
//! only streamed — one subset at a time — when a consumer such as `map`
//! actually traverses them.
//!
//! Under this strategy the paper's eager measure no longer reflects the
//! memory actually held: for `tc_paths` on the chain `rₙ`, the eager
//! complexity is `2^{Θ(n)}` while the streaming *peak resident size* stays
//! polynomial (the number of subset evaluations — i.e. *time* — remains
//! `2^{Θ(n)}`). Experiment E11 tabulates both.
//!
//! Like [`crate::eager`], the recursion runs on interned handles: the
//! resident-size accounting reads cached arena metadata instead of
//! traversing objects, and the deduplicating accumulator of a streamed
//! `map` is a set of `u32` handles rather than a tree of deep
//! comparisons. In the default mode the streamed subsets themselves are
//! built as transient tree values and evaluated on the tree path —
//! interning 2ᵏ throwaway subsets would retain them all in the arena and
//! quietly void the polynomial-resident-space property this strategy
//! exists to demonstrate. Only the base set and the (live) images touch
//! the arena.
//!
//! Two opt-in switches trade that minimality for speed, without ever
//! changing a result: [`EvalConfig::memo`] extends the eager/traced
//! **apply cache** to the per-subset evaluations (subsets are then
//! interned and keyed `(EId, VId)` against one cache shared across the
//! stream, so subtrees recurring across subsets are derived once — hits
//! in [`LazyStats::memo_hits`]), and [`EvalConfig::semi_naive`] runs
//! `while` fixpoints over powerset-free bodies on the delta-driven
//! interned walker, frontier-only per iterate.

use crate::eager::{self, Ctx, MemoState};
use crate::error::{EvalConfig, EvalError};
use crate::stats::EvalStats;
use nra_core::expr::intern::{self as expr_intern, EId};
use nra_core::expr::Expr;
use nra_core::value::intern::{self, VId};
use nra_core::value::Value;
use std::collections::BTreeSet;

/// Statistics of a streaming evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LazyStats {
    /// Peak size (in the §3 measure) of the objects *simultaneously live*:
    /// for a streamed `map`-over-`powerset`, the base set, the current
    /// subset, the accumulator, and the per-subset evaluation's own peak.
    pub peak_resident: u64,
    /// Number of subsets streamed out of symbolic powersets — a proxy for
    /// time, which stays exponential even though space does not.
    pub streamed_subsets: u64,
    /// Derivation-node count (rule applications), including per-subset
    /// work.
    pub nodes: u64,
    /// `while` iterations.
    pub while_iterations: u64,
    /// Apply-cache hits across the per-subset sub-evaluations (only
    /// nonzero under
    /// [`EvalConfig::memo`](crate::error::EvalConfig::memo), which
    /// extends the eager/traced `(EId, VId)` apply cache to the
    /// streaming strategy): a streamed `map`-over-`powerset` whose
    /// subsets share sub-structure stops re-deriving the shared
    /// subtrees. The trade-off is documented on [`evaluate_lazy_vid`]:
    /// cached subsets are interned, so the arena retains them.
    pub memo_hits: u64,
    /// Apply-cache misses across the per-subset sub-evaluations (only
    /// nonzero under `EvalConfig::memo`).
    pub memo_misses: u64,
}

impl LazyStats {
    /// Apply-cache hit rate `hits / (hits + misses)`, or 0 when the
    /// cache never ran (memo off).
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }
}

/// Result and statistics of a streaming evaluation.
#[derive(Debug, Clone)]
pub struct LazyEvaluation {
    /// The value, or the error that interrupted evaluation.
    pub result: Result<Value, EvalError>,
    /// Streaming statistics.
    pub stats: LazyStats,
}

/// Result and statistics of a streaming evaluation on interned handles.
#[derive(Debug, Clone)]
pub struct LazyVidEvaluation {
    /// The handle of the result, or the error that interrupted evaluation.
    pub result: Result<VId, EvalError>,
    /// Streaming statistics.
    pub stats: LazyStats,
}

/// A possibly-symbolic intermediate value.
enum Lv {
    /// A fully materialised (interned) object.
    Concrete(VId),
    /// `powerset(base)`, not yet materialised.
    Subsets(VId),
}

struct LazyCtx<'a> {
    config: &'a EvalConfig,
    stats: LazyStats,
    /// The shared interned-walker state (expression-node snapshot +
    /// apply/delta caches), held for the whole streaming evaluation
    /// when [`EvalConfig::memo`] or [`EvalConfig::semi_naive`] is on:
    /// per-subset sub-evaluations and delegated `while` fixpoints all
    /// run through [`eager::eval_eid`] against the same caches.
    eager_state: Option<MemoState>,
}

impl<'a> LazyCtx<'a> {
    fn resident(&mut self, size: u64) -> Result<(), EvalError> {
        self.stats.peak_resident = self.stats.peak_resident.max(size);
        match self.config.max_object_size {
            Some(budget) if size > budget => Err(EvalError::SpaceBudgetExceeded {
                required: size,
                budget,
            }),
            _ => Ok(()),
        }
    }

    fn node(&mut self) -> Result<(), EvalError> {
        self.stats.nodes += 1;
        match self.config.max_nodes {
            Some(budget) if self.stats.nodes > budget => {
                Err(EvalError::NodeBudgetExceeded { budget })
            }
            _ => Ok(()),
        }
    }

    /// Run a sub-evaluation eagerly on interned handles, folding its
    /// statistics into ours. Its own peak is *transient* memory and
    /// contributes to `peak_resident` together with whatever `extra_live`
    /// is currently held.
    fn eager_sub(&mut self, expr: &Expr, input: VId, extra_live: u64) -> Result<VId, EvalError> {
        let mut sub = Ctx::new(self.config);
        let out = eager::eval_vid(expr, input, &mut sub);
        self.merge_sub(&sub.stats, extra_live)?;
        out
    }

    /// Run a sub-evaluation eagerly on the *tree* path — used for the
    /// bodies applied to each streamed subset, so the transient subsets
    /// are never retained by the interning arena.
    fn eager_sub_tree(
        &mut self,
        expr: &Expr,
        input: &Value,
        extra_live: u64,
    ) -> Result<Value, EvalError> {
        let mut sub = Ctx::new(self.config);
        let out = eager::eval_in(expr, input, &mut sub);
        self.merge_sub(&sub.stats, extra_live)?;
        out
    }

    /// Run a sub-evaluation through the shared interned walker
    /// ([`eager::eval_eid`]) — the apply cache persists across *all*
    /// sub-evaluations of this streaming evaluation, which is what lets
    /// streamed subsets share their sub-derivations. The expression is
    /// assumed already interned with the snapshot resynced
    /// ([`LazyCtx::intern_expr`]).
    fn eager_sub_eid(&mut self, eid: EId, input: VId, extra_live: u64) -> Result<VId, EvalError> {
        let mut sub = Ctx::new(self.config);
        let state = self.eager_state.as_mut().expect("cached mode");
        let out = {
            let MemoState { nodes, caches, .. } = state;
            eager::eval_eid(eid, input, &mut sub, nodes, caches)
        };
        self.merge_sub(&sub.stats, extra_live)?;
        out
    }

    /// Intern an expression and bring the shared walker's node snapshot
    /// up to date — required before the first [`LazyCtx::eager_sub_eid`]
    /// on it.
    fn intern_expr(&mut self, expr: &Expr) -> EId {
        let eid = expr_intern::intern(expr);
        self.eager_state.as_mut().expect("cached mode").resync();
        eid
    }

    fn merge_sub(&mut self, sub: &EvalStats, extra_live: u64) -> Result<(), EvalError> {
        self.stats.nodes += sub.nodes;
        self.stats.while_iterations += sub.while_iterations;
        self.stats.memo_hits += sub.memo_hits;
        self.stats.memo_misses += sub.memo_misses;
        self.resident(sub.max_object_size.saturating_add(extra_live))
    }
}

/// Evaluate under the streaming strategy.
pub fn evaluate_lazy(expr: &Expr, input: &Value, config: &EvalConfig) -> LazyEvaluation {
    let iv = intern::intern(input);
    let ev = evaluate_lazy_vid(expr, iv, config);
    LazyEvaluation {
        result: ev.result.map(intern::resolve),
        stats: ev.stats,
    }
}

/// Evaluate under the streaming strategy, entirely on interned handles.
///
/// Under [`EvalConfig::memo`] the eager/traced **apply cache** extends
/// to this strategy: per-subset sub-evaluations run on the interned
/// walker, keyed `(EId, VId)` against one cache shared across the whole
/// evaluation, so streamed `map`-over-`powerset` stops re-deriving the
/// subtrees its subsets share (hits in [`LazyStats::memo_hits`]). The
/// price is that streamed subsets are then *interned* — the arena
/// retains one set node per distinct subset — trading the strategy's
/// minimal-retention property for speed; keep memo off (the default)
/// when measuring the §3 space story. Under [`EvalConfig::semi_naive`],
/// `while` fixpoints over powerset-free bodies additionally run
/// delta-driven, exactly as in [`eager::evaluate_vid`].
pub fn evaluate_lazy_vid(expr: &Expr, input: VId, config: &EvalConfig) -> LazyVidEvaluation {
    let mut ctx = LazyCtx {
        config,
        stats: LazyStats::default(),
        eager_state: (config.memo || config.semi_naive).then(MemoState::acquire),
    };
    let result = match lazy_in(expr, Lv::Concrete(input), &mut ctx) {
        Ok(lv) => force(lv, &mut ctx),
        Err(e) => Err(e),
    };
    if let Some(state) = ctx.eager_state.take() {
        state.release();
    }
    LazyVidEvaluation {
        result,
        stats: ctx.stats,
    }
}

/// Materialise a symbolic value (falls back to the eager powerset rule).
fn force(lv: Lv, ctx: &mut LazyCtx) -> Result<VId, EvalError> {
    match lv {
        Lv::Concrete(v) => {
            ctx.resident(intern::size(v))?;
            Ok(v)
        }
        Lv::Subsets(base) => {
            let mut sub = Ctx::new(ctx.config);
            let out = eager::eval_vid(&Expr::Powerset, base, &mut sub);
            ctx.merge_sub(&sub.stats, 0)?;
            out
        }
    }
}

fn stuck(rule: &'static str, detail: &str) -> EvalError {
    EvalError::Stuck {
        rule,
        detail: detail.to_string(),
    }
}

fn lazy_in(expr: &Expr, input: Lv, ctx: &mut LazyCtx) -> Result<Lv, EvalError> {
    ctx.node()?;
    match expr {
        Expr::Compose(g, f) => {
            let mid = lazy_in(f, input, ctx)?;
            lazy_in(g, mid, ctx)
        }
        Expr::Powerset => {
            let base = force(input, ctx)?;
            if intern::cardinality(base).is_none() {
                return Err(stuck("powerset", "input is not a set"));
            }
            Ok(Lv::Subsets(base))
        }
        Expr::Flatten => match input {
            // μ(powerset(x)) = x : the subsets' union is the base itself.
            Lv::Subsets(base) => Ok(Lv::Concrete(base)),
            Lv::Concrete(v) => Ok(Lv::Concrete(ctx.eager_sub(&Expr::Flatten, v, 0)?)),
        },
        Expr::IsEmpty => match input {
            // powerset(x) always contains ∅, hence is never empty.
            Lv::Subsets(_) => Ok(Lv::Concrete(intern::bool_(false))),
            Lv::Concrete(v) => Ok(Lv::Concrete(ctx.eager_sub(&Expr::IsEmpty, v, 0)?)),
        },
        Expr::Map(f) => match input {
            Lv::Subsets(base) => {
                // Stream the subsets: only base + current subset +
                // accumulator + per-subset transient memory are live.
                let items = intern::as_set(base)
                    .ok_or_else(|| stuck("map", "powerset base is not a set"))?;
                if items.len() > 62 {
                    return Err(EvalError::PowersetOverflow {
                        input_cardinality: items.len() as u64,
                    });
                }
                let base_size = intern::size(base);
                let mut acc: BTreeSet<VId> = BTreeSet::new();
                let mut acc_size: u64 = 1;
                if ctx.eager_state.is_some() && ctx.config.memo {
                    // The sharing-aware route (EvalConfig::memo): each
                    // subset is interned and its evaluation keyed
                    // (EId, VId) in the apply cache shared across the
                    // whole stream, so sub-derivations recurring across
                    // subsets are found instead of re-derived. This
                    // deliberately retains the streamed subsets in the
                    // arena — see `evaluate_lazy_vid`.
                    let feid = ctx.intern_expr(f);
                    for mask in 0u64..(1u64 << items.len()) {
                        let subset: Vec<VId> = items
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| mask & (1 << i) != 0)
                            .map(|(_, &e)| e)
                            .collect();
                        let subset = intern::with_arena(|a| a.set_from_vec(subset));
                        ctx.stats.streamed_subsets += 1;
                        let live = base_size + intern::size(subset) + acc_size;
                        let image = ctx.eager_sub_eid(feid, subset, live)?;
                        if acc.insert(image) {
                            acc_size += intern::size(image);
                        }
                        ctx.resident(live)?;
                    }
                } else {
                    // The default route: subsets are deliberately built
                    // as *transient tree values* and evaluated on the
                    // tree path — interning them would retain all 2ᵏ
                    // subsets in the never-shrinking arena, silently
                    // trading the strategy's polynomial peak-resident
                    // guarantee for speed. Only the images — genuinely
                    // live in the accumulator — are interned.
                    let elems: Vec<Value> =
                        intern::with_arena(|a| items.iter().map(|&e| a.resolve(e)).collect());
                    for mask in 0u64..(1u64 << elems.len()) {
                        let subset = Value::set(
                            elems
                                .iter()
                                .enumerate()
                                .filter(|(i, _)| mask & (1 << i) != 0)
                                .map(|(_, e)| e.clone()),
                        );
                        ctx.stats.streamed_subsets += 1;
                        let live = base_size + subset.size() + acc_size;
                        let image = ctx.eager_sub_tree(f, &subset, live)?;
                        let image = intern::intern(&image);
                        if acc.insert(image) {
                            acc_size += intern::size(image);
                        }
                        ctx.resident(live)?;
                    }
                }
                Ok(Lv::Concrete(intern::set(acc)))
            }
            Lv::Concrete(v) => {
                let items = intern::as_set(v).ok_or_else(|| stuck("map", "input is not a set"))?;
                let mut out = Vec::with_capacity(items.len());
                for &item in items.iter() {
                    let image = lazy_in(f, Lv::Concrete(item), ctx)?;
                    out.push(force(image, ctx)?);
                }
                let out = intern::set(out);
                ctx.resident(intern::size(out))?;
                Ok(Lv::Concrete(out))
            }
        },
        Expr::Tuple(f, g) => {
            let v = force(input, ctx)?;
            let a = force(lazy_in(f, Lv::Concrete(v), ctx)?, ctx)?;
            let b = force(lazy_in(g, Lv::Concrete(v), ctx)?, ctx)?;
            Ok(Lv::Concrete(intern::pair(a, b)))
        }
        Expr::Cond(c, then, els) => {
            let v = force(input, ctx)?;
            match intern::as_bool(force(lazy_in(c, Lv::Concrete(v), ctx)?, ctx)?) {
                Some(true) => lazy_in(then, Lv::Concrete(v), ctx),
                Some(false) => lazy_in(els, Lv::Concrete(v), ctx),
                None => Err(stuck("if", "condition is not boolean")),
            }
        }
        Expr::While(f) => {
            let current = force(input, ctx)?;
            if ctx.eager_state.is_some() && !expr.level().powerset {
                // The lazy context threads (total, delta) through the
                // fixpoint by delegating it wholesale to the interned
                // walker: a powerset-free body never streams, so the
                // delta-driven (and/or memoised) eager rules compute the
                // bit-identical trajectory with frontier-only work.
                let weid = ctx.intern_expr(expr);
                return Ok(Lv::Concrete(ctx.eager_sub_eid(weid, current, 0)?));
            }
            let mut current = current;
            let mut iterations: u64 = 0;
            loop {
                let next = force(lazy_in(f, Lv::Concrete(current), ctx)?, ctx)?;
                iterations += 1;
                ctx.stats.while_iterations += 1;
                // O(1) fixpoint test on handles
                if next == current {
                    break Ok(Lv::Concrete(current));
                }
                if iterations >= ctx.config.max_while_iters {
                    break Err(EvalError::WhileDiverged { iterations });
                }
                current = next;
            }
        }
        leaf => {
            let v = force(input, ctx)?;
            Ok(Lv::Concrete(ctx.eager_sub(leaf, v, 0)?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eager::evaluate;
    use nra_core::builder::*;
    use nra_core::queries;

    #[test]
    fn lazy_agrees_with_eager_on_queries() {
        let cfg = EvalConfig::default();
        for n in 0..6u64 {
            let input = Value::chain(n);
            for q in [
                queries::tc_paths(),
                queries::tc_while(),
                queries::siblings_powerset(),
                compose(flatten(), map(sng())),
            ] {
                let eager_out = evaluate(&q, &input, &cfg).result.unwrap();
                let lazy_out = evaluate_lazy(&q, &input, &cfg).result.unwrap();
                assert_eq!(eager_out, lazy_out, "n = {n}");
            }
        }
    }

    #[test]
    fn streaming_keeps_peak_resident_small() {
        let cfg = EvalConfig::default();
        let q = queries::tc_paths();
        let n = 9;
        let eager_ev = evaluate(&q, &Value::chain(n), &cfg);
        let lazy_ev = evaluate_lazy(&q, &Value::chain(n), &cfg);
        assert_eq!(eager_ev.result.unwrap(), lazy_ev.result.clone().unwrap());
        let eager_peak = eager_ev.stats.max_object_size;
        let lazy_peak = lazy_ev.stats.peak_resident;
        // eager materialises powerset(r₉): > 2⁹ · something; lazy holds a
        // few polynomial objects.
        assert!(
            eager_peak > 8 * lazy_peak,
            "eager {eager_peak} vs lazy {lazy_peak}"
        );
        // but the *time* (streamed subsets) is still 2⁹
        assert_eq!(lazy_ev.stats.streamed_subsets, 512);
    }

    #[test]
    fn flatten_of_powerset_is_identity() {
        let q = compose(flatten(), powerset());
        let v = Value::chain(5);
        let ev = evaluate_lazy(&q, &v, &EvalConfig::default());
        assert_eq!(ev.result.unwrap(), v);
        // no subsets were ever streamed
        assert_eq!(ev.stats.streamed_subsets, 0);
    }

    #[test]
    fn isempty_of_powerset_short_circuits() {
        let q = compose(is_empty(), powerset());
        let ev = evaluate_lazy(&q, &Value::empty_set(), &EvalConfig::default());
        assert_eq!(ev.result.unwrap(), Value::FALSE);
        assert_eq!(ev.stats.streamed_subsets, 0);
    }

    #[test]
    fn budget_applies_to_resident_not_streamed_total() {
        // A budget far below the eager powerset size still admits the
        // streamed evaluation.
        let q = queries::tc_paths();
        let n = 8;
        let eager_needed = evaluate(&q, &Value::chain(n), &EvalConfig::default())
            .stats
            .max_object_size;
        let cfg = EvalConfig::with_space_budget(eager_needed / 4);
        let lazy_ev = evaluate_lazy(&q, &Value::chain(n), &cfg);
        assert!(lazy_ev.result.is_ok(), "{:?}", lazy_ev.result);
        let eager_ev = evaluate(&q, &Value::chain(n), &cfg);
        assert!(matches!(
            eager_ev.result,
            Err(EvalError::SpaceBudgetExceeded { .. })
        ));
    }

    #[test]
    fn streaming_does_not_retain_subsets_in_the_arena() {
        // the point of the strategy: 2ⁿ subsets are streamed, but they are
        // transient tree values — the arena must grow by far less than 2ⁿ
        // (only the base, the images actually live in the accumulator, and
        // boundary conversions)
        let n = 10u64;
        let input = intern::chain(n);
        let before = intern::arena_stats().nodes;
        let ev = evaluate_lazy_vid(&queries::tc_paths(), input, &EvalConfig::default());
        assert_eq!(ev.result.unwrap(), intern::chain_tc(n));
        assert_eq!(ev.stats.streamed_subsets, 1 << n);
        let delta = intern::arena_stats().nodes - before;
        assert!(
            delta < (1 << n) / 2,
            "arena grew by {delta} nodes for 2^{n} streamed subsets — \
             transient subsets are being retained"
        );
    }

    #[test]
    fn lazy_vid_stays_on_handles() {
        let input = intern::chain(6);
        let ev = evaluate_lazy_vid(&queries::tc_paths(), input, &EvalConfig::default());
        assert_eq!(ev.result.unwrap(), intern::chain_tc(6));
    }
}
