//! A streaming ("lazy") evaluation strategy for `powerset` and
//! `powersetₘ`.
//!
//! §3 scopes the lower bound precisely: "our main result will depend (1) on
//! the particular evaluation strategy and (2) on the complexity measure. …
//! it is not obvious whether it still holds for a lazy evaluation
//! strategy." This module makes that caveat concrete: `powerset` (and
//! `powersetₘ`) results are represented *symbolically* (as "the subsets of
//! this base set", optionally cardinality-bounded) and only streamed — one
//! subset at a time — when a consumer such as `map` actually traverses
//! them.
//!
//! Under this strategy the paper's eager measure no longer reflects the
//! memory actually held: for `tc_paths` on the chain `rₙ`, the eager
//! complexity is `2^{Θ(n)}` while the streaming *peak resident size* stays
//! polynomial (the number of subset evaluations — i.e. *time* — remains
//! `2^{Θ(n)}`). Experiment E11 tabulates both.
//!
//! Like [`crate::eager`], the recursion runs on interned handles against
//! an **explicitly threaded** [`ValueArena`]/[`ExprArena`] pair — a
//! session passes its own, the free-function facade passes the
//! thread-locals — so the §3 resident-size accounting reads cached arena
//! metadata and the hot path touches no thread-local state. In the
//! default mode the streamed subsets themselves are built as transient
//! tree values and evaluated on the tree path — interning 2ᵏ throwaway
//! subsets would retain them all in the arena and quietly void the
//! polynomial-resident-space property this strategy exists to
//! demonstrate. Only the base set and the (live) images touch the arena.
//!
//! Two opt-in switches trade that minimality for speed, without ever
//! changing a result: [`EvalConfig::memo`] extends the eager/traced
//! **apply cache** to the per-subset evaluations (subsets are then
//! interned and keyed `(EId, VId)` against one cache shared across the
//! stream, so subtrees recurring across subsets are derived once — hits
//! in [`LazyStats::memo_hits`]), and [`EvalConfig::semi_naive`] runs
//! `while` fixpoints over powerset-free bodies on the delta-driven
//! interned walker — and, for `powersetₘ` (or `powerset`) **chains inside
//! a fixpoint**, resumes the subset stream incrementally: when the same
//! `map` body re-fires over the subsets of a *grown* base (the steady
//! state of a bounded-witness TC loop), only the subsets containing at
//! least one fresh element are streamed and the previous images are
//! folded in ([`LazyStats::frontier_streams`] /
//! [`LazyStats::frontier_subsets_skipped`]).

use crate::eager::{self, binomial, Ctx, MemoState};
use crate::error::{EvalConfig, EvalError};
use crate::stats::EvalStats;
use nra_core::expr::intern::{self as expr_intern, EId, ExprArena};
use nra_core::expr::Expr;
use nra_core::value::intern::{self, FxBuildHasher, VId, ValueArena};
use nra_core::value::Value;
use std::collections::{BTreeSet, HashMap};

/// Statistics of a streaming evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LazyStats {
    /// Peak size (in the §3 measure) of the objects *simultaneously live*:
    /// for a streamed `map`-over-`powerset`, the base set, the current
    /// subset, the accumulator, and the per-subset evaluation's own peak.
    pub peak_resident: u64,
    /// Number of subsets streamed out of symbolic powersets — a proxy for
    /// time, which stays exponential even though space does not.
    pub streamed_subsets: u64,
    /// Derivation-node count (rule applications), including per-subset
    /// work.
    pub nodes: u64,
    /// `while` iterations.
    pub while_iterations: u64,
    /// Apply-cache hits across the per-subset sub-evaluations (only
    /// nonzero under
    /// [`EvalConfig::memo`](crate::error::EvalConfig::memo), which
    /// extends the eager/traced `(EId, VId)` apply cache to the
    /// streaming strategy): a streamed `map`-over-`powerset` whose
    /// subsets share sub-structure stops re-deriving the shared
    /// subtrees. The trade-off is documented on [`evaluate_lazy_vid`]:
    /// cached subsets are interned, so the arena retains them.
    pub memo_hits: u64,
    /// Apply-cache misses across the per-subset sub-evaluations (only
    /// nonzero under `EvalConfig::memo`).
    pub memo_misses: u64,
    /// The subset of `memo_hits` served by entries written by an
    /// earlier query of the same session (cross-query warm starts) —
    /// always 0 through the free-function facade, exactly as
    /// [`EvalStats::warm_hits`](crate::stats::EvalStats::warm_hits).
    pub warm_hits: u64,
    /// `map`-over-subsets applications served **incrementally** (only
    /// nonzero under
    /// [`EvalConfig::semi_naive`](crate::error::EvalConfig::semi_naive)):
    /// the same body re-fired over the subsets of a grown base — the
    /// steady state of a `powersetₘ` chain inside a `while` — so only
    /// subsets touching the frontier were streamed and the previous
    /// images were folded in.
    pub frontier_streams: u64,
    /// Subsets *not* re-enumerated by those incremental applications
    /// (every subset of the previous base: its image is already in the
    /// folded-in accumulator). Like `delta_skipped` on the eager side,
    /// reported separately — the result is bit-for-bit the full
    /// re-stream's.
    pub frontier_subsets_skipped: u64,
}

impl LazyStats {
    /// Apply-cache hit rate `hits / (hits + misses)`, or 0 when the
    /// cache never ran (memo off).
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }
}

/// Result and statistics of a streaming evaluation.
#[derive(Debug, Clone)]
pub struct LazyEvaluation {
    /// The value, or the error that interrupted evaluation.
    pub result: Result<Value, EvalError>,
    /// Streaming statistics.
    pub stats: LazyStats,
}

/// Result and statistics of a streaming evaluation on interned handles.
#[derive(Debug, Clone)]
pub struct LazyVidEvaluation {
    /// The handle of the result, or the error that interrupted evaluation.
    pub result: Result<VId, EvalError>,
    /// Streaming statistics.
    pub stats: LazyStats,
}

/// A possibly-symbolic intermediate value.
enum Lv {
    /// A fully materialised (interned) object.
    Concrete(VId),
    /// `powerset(base)` (`bound = None`) or `powersetₘ(base)`
    /// (`bound = Some(m)`), not yet materialised.
    Subsets {
        /// The base set whose subsets are denoted.
        base: VId,
        /// Cardinality bound `m` for `powersetₘ`; `None` = full powerset.
        bound: Option<u64>,
    },
}

/// The frontier-resumption cache of the semi-naive streaming route: per
/// `map` body, the last base (and bound) its subset stream ran over and
/// the interned output, so a re-fire over a grown base streams only the
/// subsets touching the fresh elements.
struct SubsetDeltaEntry {
    base: VId,
    bound: Option<u64>,
    output: VId,
}

struct LazyCtx<'a> {
    config: &'a EvalConfig,
    stats: LazyStats,
    /// The value arena every rule runs against — a session's own, or the
    /// thread-local one borrowed for the whole evaluation by the facade.
    va: &'a mut ValueArena,
    /// The expression arena (the cached routes intern bodies mid-stream).
    ea: &'a mut ExprArena,
    /// The shared interned-walker state (expression-node snapshot +
    /// apply/delta caches), present when [`EvalConfig::memo`] or
    /// [`EvalConfig::semi_naive`] is on: per-subset sub-evaluations and
    /// delegated `while` fixpoints all run through [`eager::eval_eid`]
    /// against the same caches.
    state: Option<&'a mut MemoState>,
    /// Frontier-resumption entries, keyed by the streamed `map` body.
    subset_delta: HashMap<EId, SubsetDeltaEntry, FxBuildHasher>,
}

impl<'a> LazyCtx<'a> {
    fn resident(&mut self, size: u64) -> Result<(), EvalError> {
        self.stats.peak_resident = self.stats.peak_resident.max(size);
        match self.config.max_object_size {
            Some(budget) if size > budget => Err(EvalError::SpaceBudgetExceeded {
                required: size,
                budget,
            }),
            _ => Ok(()),
        }
    }

    fn node(&mut self) -> Result<(), EvalError> {
        self.stats.nodes += 1;
        match self.config.max_nodes {
            Some(budget) if self.stats.nodes > budget => {
                Err(EvalError::NodeBudgetExceeded { budget })
            }
            _ => Ok(()),
        }
    }

    /// Run a sub-evaluation eagerly on interned handles, folding its
    /// statistics into ours. Its own peak is *transient* memory and
    /// contributes to `peak_resident` together with whatever `extra_live`
    /// is currently held.
    fn eager_sub(&mut self, expr: &Expr, input: VId, extra_live: u64) -> Result<VId, EvalError> {
        let mut sub = Ctx::new(self.config);
        let out = eager::eval_vid(expr, input, &mut sub, self.va);
        self.merge_sub(&sub.stats, extra_live)?;
        out
    }

    /// Run a sub-evaluation eagerly on the *tree* path — used for the
    /// bodies applied to each streamed subset, so the transient subsets
    /// are never retained by the interning arena.
    fn eager_sub_tree(
        &mut self,
        expr: &Expr,
        input: &Value,
        extra_live: u64,
    ) -> Result<Value, EvalError> {
        let mut sub = Ctx::new(self.config);
        let out = eager::eval_in(expr, input, &mut sub);
        self.merge_sub(&sub.stats, extra_live)?;
        out
    }

    /// Run a sub-evaluation through the shared interned walker
    /// ([`eager::eval_eid`]) — the apply cache persists across *all*
    /// sub-evaluations of this streaming evaluation, which is what lets
    /// streamed subsets share their sub-derivations. The expression is
    /// assumed already interned with the snapshot resynced
    /// ([`LazyCtx::intern_expr`]).
    fn eager_sub_eid(&mut self, eid: EId, input: VId, extra_live: u64) -> Result<VId, EvalError> {
        let mut sub = Ctx::new(self.config);
        let state = self.state.as_deref_mut().expect("cached mode");
        let out = {
            let MemoState { nodes, caches, .. } = state;
            eager::eval_eid(eid, input, &mut sub, nodes, caches, self.va)
        };
        self.merge_sub(&sub.stats, extra_live)?;
        out
    }

    /// Intern an expression and bring the shared walker's node snapshot
    /// up to date — required before the first [`LazyCtx::eager_sub_eid`]
    /// on it.
    fn intern_expr(&mut self, expr: &Expr) -> EId {
        let eid = self.ea.intern(expr);
        self.state
            .as_deref_mut()
            .expect("cached mode")
            .resync(self.ea);
        eid
    }

    fn merge_sub(&mut self, sub: &EvalStats, extra_live: u64) -> Result<(), EvalError> {
        self.stats.nodes += sub.nodes;
        self.stats.while_iterations += sub.while_iterations;
        self.stats.memo_hits += sub.memo_hits;
        self.stats.memo_misses += sub.memo_misses;
        self.stats.warm_hits += sub.warm_hits;
        self.resident(sub.max_object_size.saturating_add(extra_live))
    }
}

/// Evaluate under the streaming strategy.
pub fn evaluate_lazy(expr: &Expr, input: &Value, config: &EvalConfig) -> LazyEvaluation {
    let iv = intern::intern(input);
    let ev = evaluate_lazy_vid(expr, iv, config);
    LazyEvaluation {
        result: ev.result.map(intern::resolve),
        stats: ev.stats,
    }
}

/// Evaluate under the streaming strategy, entirely on interned handles
/// (the calling thread's arenas — the compatibility facade over the
/// engine-layer `lazy_eval_with` entry point sessions use).
///
/// Under [`EvalConfig::memo`] the eager/traced **apply cache** extends
/// to this strategy: per-subset sub-evaluations run on the interned
/// walker, keyed `(EId, VId)` against one cache shared across the whole
/// evaluation, so streamed `map`-over-`powerset` stops re-deriving the
/// subtrees its subsets share (hits in [`LazyStats::memo_hits`]). The
/// price is that streamed subsets are then *interned* — the arena
/// retains one set node per distinct subset — trading the strategy's
/// minimal-retention property for speed; keep memo off (the default)
/// when measuring the §3 space story. Under [`EvalConfig::semi_naive`],
/// `while` fixpoints over powerset-free bodies additionally run
/// delta-driven, exactly as in [`eager::evaluate_vid`], and subset
/// streams inside powerset-carrying fixpoints resume incrementally from
/// their previous base (the same retention trade-off applies).
pub fn evaluate_lazy_vid(expr: &Expr, input: VId, config: &EvalConfig) -> LazyVidEvaluation {
    intern::with_arena(|va| {
        expr_intern::with_arena(|ea| {
            let mut state =
                (config.memo || config.semi_naive).then(|| MemoState::acquire_pooled(ea));
            let ev = lazy_eval_with(expr, input, config, va, ea, state.as_mut());
            if let Some(state) = state {
                state.release_pooled();
            }
            ev
        })
    })
}

/// Run one streaming evaluation against explicitly supplied arenas and
/// (for the cached routes) walker state — the engine-layer entry point
/// sessions call; [`evaluate_lazy_vid`] is its thread-local facade.
pub(crate) fn lazy_eval_with(
    expr: &Expr,
    input: VId,
    config: &EvalConfig,
    va: &mut ValueArena,
    ea: &mut ExprArena,
    state: Option<&mut MemoState>,
) -> LazyVidEvaluation {
    let mut ctx = LazyCtx {
        config,
        stats: LazyStats::default(),
        va,
        ea,
        state,
        subset_delta: HashMap::default(),
    };
    let result = match lazy_in(expr, Lv::Concrete(input), &mut ctx) {
        Ok(lv) => force(lv, &mut ctx),
        Err(e) => Err(e),
    };
    LazyVidEvaluation {
        result,
        stats: ctx.stats,
    }
}

/// Materialise a symbolic value (falls back to the eager powerset rules).
fn force(lv: Lv, ctx: &mut LazyCtx) -> Result<VId, EvalError> {
    match lv {
        Lv::Concrete(v) => {
            ctx.resident(ctx.va.size(v))?;
            Ok(v)
        }
        Lv::Subsets { base, bound } => {
            let expr = match bound {
                None => Expr::Powerset,
                Some(m) => Expr::PowersetM(m),
            };
            let mut sub = Ctx::new(ctx.config);
            let out = eager::eval_vid(&expr, base, &mut sub, ctx.va);
            ctx.merge_sub(&sub.stats, 0)?;
            out
        }
    }
}

fn stuck(rule: &'static str, detail: &str) -> EvalError {
    EvalError::Stuck {
        rule,
        detail: detail.to_string(),
    }
}

/// Number of subsets of an `n`-element set with cardinality ≤ `bound`
/// (saturating) — what a resumed stream *skips* re-enumerating.
fn subset_count(n: usize, bound: Option<u64>) -> u64 {
    let total: u128 = match bound {
        None => 1u128 << n.min(127),
        Some(m) => (0..=m.min(n as u64)).map(|i| binomial(n as u64, i)).sum(),
    };
    u64::try_from(total).unwrap_or(u64::MAX)
}

/// Enumerate every index combination of `0..n` with size ≤ `max_len`,
/// calling `f` once per combination (the empty one included), in DFS
/// order. The streaming routes use this instead of a 2ⁿ mask scan so a
/// cardinality-bounded stream costs `Σᵢ C(n, i)`, not `2ⁿ`.
fn for_each_combination(
    n: usize,
    max_len: usize,
    f: &mut impl FnMut(&[usize]) -> Result<(), EvalError>,
) -> Result<(), EvalError> {
    fn rec(
        start: usize,
        n: usize,
        remaining: usize,
        cur: &mut Vec<usize>,
        f: &mut impl FnMut(&[usize]) -> Result<(), EvalError>,
    ) -> Result<(), EvalError> {
        f(cur)?;
        if remaining == 0 {
            return Ok(());
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, remaining - 1, cur, f)?;
            cur.pop();
        }
        Ok(())
    }
    rec(0, n, max_len, &mut Vec::with_capacity(max_len), f)
}

fn lazy_in(expr: &Expr, input: Lv, ctx: &mut LazyCtx) -> Result<Lv, EvalError> {
    ctx.node()?;
    match expr {
        Expr::Compose(g, f) => {
            let mid = lazy_in(f, input, ctx)?;
            lazy_in(g, mid, ctx)
        }
        Expr::Powerset => {
            let base = force(input, ctx)?;
            if ctx.va.cardinality(base).is_none() {
                return Err(stuck("powerset", "input is not a set"));
            }
            Ok(Lv::Subsets { base, bound: None })
        }
        Expr::PowersetM(m) => {
            let base = force(input, ctx)?;
            if ctx.va.cardinality(base).is_none() {
                return Err(stuck("powerset_m", "input is not a set"));
            }
            Ok(Lv::Subsets {
                base,
                bound: Some(*m),
            })
        }
        Expr::Flatten => match input {
            // μ(powerset(x)) = x; μ(powersetₘ(x)) = x for m ≥ 1, ∅ for
            // m = 0 ({∅} is the only subset) — no subset is ever streamed.
            Lv::Subsets { base, bound } => match bound {
                Some(0) => Ok(Lv::Concrete(ctx.va.empty_set())),
                _ => Ok(Lv::Concrete(base)),
            },
            Lv::Concrete(v) => Ok(Lv::Concrete(ctx.eager_sub(&Expr::Flatten, v, 0)?)),
        },
        Expr::IsEmpty => match input {
            // powerset(ₘ)(x) always contains ∅, hence is never empty.
            Lv::Subsets { .. } => Ok(Lv::Concrete(ctx.va.bool_(false))),
            Lv::Concrete(v) => Ok(Lv::Concrete(ctx.eager_sub(&Expr::IsEmpty, v, 0)?)),
        },
        Expr::Map(f) => match input {
            Lv::Subsets { base, bound } => stream_map(f, base, bound, ctx),
            Lv::Concrete(v) => {
                let items = ctx
                    .va
                    .as_set(v)
                    .ok_or_else(|| stuck("map", "input is not a set"))?;
                let mut out = Vec::with_capacity(items.len());
                for &item in items.iter() {
                    let image = lazy_in(f, Lv::Concrete(item), ctx)?;
                    out.push(force(image, ctx)?);
                }
                let out = ctx.va.set_from_vec(out);
                ctx.resident(ctx.va.size(out))?;
                Ok(Lv::Concrete(out))
            }
        },
        Expr::Tuple(f, g) => {
            let v = force(input, ctx)?;
            let a = force(lazy_in(f, Lv::Concrete(v), ctx)?, ctx)?;
            let b = force(lazy_in(g, Lv::Concrete(v), ctx)?, ctx)?;
            Ok(Lv::Concrete(ctx.va.pair(a, b)))
        }
        Expr::Cond(c, then, els) => {
            let v = force(input, ctx)?;
            let cv = force(lazy_in(c, Lv::Concrete(v), ctx)?, ctx)?;
            match ctx.va.as_bool(cv) {
                Some(true) => lazy_in(then, Lv::Concrete(v), ctx),
                Some(false) => lazy_in(els, Lv::Concrete(v), ctx),
                None => Err(stuck("if", "condition is not boolean")),
            }
        }
        Expr::While(f) => {
            let current = force(input, ctx)?;
            let level = expr.level();
            if ctx.state.is_some() && !level.powerset && !level.powerset_m {
                // The lazy context threads (total, delta) through the
                // fixpoint by delegating it wholesale to the interned
                // walker: a powerset-free body never streams, so the
                // delta-driven (and/or memoised) eager rules compute the
                // bit-identical trajectory with frontier-only work.
                let weid = ctx.intern_expr(expr);
                return Ok(Lv::Concrete(ctx.eager_sub_eid(weid, current, 0)?));
            }
            // a powerset(ₘ)-carrying body iterates here, streaming its
            // subsets per iterate — with frontier resumption across
            // iterates under the semi-naive switch (see `stream_map`)
            let mut current = current;
            let mut iterations: u64 = 0;
            loop {
                let next = force(lazy_in(f, Lv::Concrete(current), ctx)?, ctx)?;
                iterations += 1;
                ctx.stats.while_iterations += 1;
                // O(1) fixpoint test on handles
                if next == current {
                    break Ok(Lv::Concrete(current));
                }
                if iterations >= ctx.config.max_while_iters {
                    break Err(EvalError::WhileDiverged { iterations });
                }
                current = next;
            }
        }
        leaf => {
            let v = force(input, ctx)?;
            Ok(Lv::Concrete(ctx.eager_sub(leaf, v, 0)?))
        }
    }
}

/// Stream the subsets of `base` (cardinality-bounded for `powersetₘ`)
/// through the `map` body `f`: only base + current subset + accumulator
/// + per-subset transient memory are live at any point.
fn stream_map(f: &Expr, base: VId, bound: Option<u64>, ctx: &mut LazyCtx) -> Result<Lv, EvalError> {
    let items = ctx
        .va
        .as_set(base)
        .ok_or_else(|| stuck("map", "powerset base is not a set"))?;
    if items.len() > 62 {
        return Err(EvalError::PowersetOverflow {
            input_cardinality: items.len() as u64,
        });
    }
    let base_size = ctx.va.size(base);
    let max_len = bound.map_or(items.len(), |m| (m.min(items.len() as u64)) as usize);
    let mut acc: BTreeSet<VId> = BTreeSet::new();
    let mut acc_size: u64 = 1;
    if ctx.state.is_some() {
        // The sharing-aware route (EvalConfig::memo and/or semi_naive):
        // each subset is interned and evaluated through the shared
        // interned walker — under memo, keyed (EId, VId) in the apply
        // cache shared across the whole stream, so sub-derivations
        // recurring across subsets are found instead of re-derived. This
        // deliberately retains the streamed subsets in the arena — see
        // `evaluate_lazy_vid`.
        let feid = ctx.intern_expr(f);
        // Frontier resumption (EvalConfig::semi_naive): when this body
        // last streamed over a base' ⊆ base with the same bound — the
        // steady state of a powersetₘ chain inside a while — seed the
        // accumulator with the previous images and stream only the
        // subsets containing at least one fresh element. map distributes
        // over the subset stream subset-by-subset, so the folded result
        // is bit-for-bit the full re-stream's.
        let previous = if ctx.config.semi_naive {
            ctx.subset_delta
                .get(&feid)
                .filter(|entry| entry.bound == bound)
                .map(|entry| (entry.base, entry.output))
        } else {
            None
        };
        let resumed = previous.and_then(|(prev_base, prev_out)| {
            if prev_base == base {
                return Some((prev_out, Vec::new(), items.to_vec()));
            }
            if ctx.va.is_subset(prev_base, base) != Some(true) {
                return None;
            }
            let old = ctx.va.as_set(prev_base).expect("previous base is a set");
            let fresh: Vec<VId> = items
                .iter()
                .copied()
                .filter(|e| old.binary_search(e).is_err())
                .collect();
            Some((prev_out, fresh, old.to_vec()))
        });
        match resumed {
            Some((prev_out, fresh, old)) => {
                ctx.stats.frontier_streams += 1;
                ctx.stats.frontier_subsets_skipped += subset_count(old.len(), bound);
                let prev_items = ctx
                    .va
                    .as_set(prev_out)
                    .expect("map over subsets yields a set");
                acc.extend(prev_items.iter().copied());
                acc_size = ctx.va.size(prev_out);
                // subsets with ≥ 1 fresh element: a nonempty combination
                // of fresh elements unioned with any combination of old
                // ones, within the cardinality bound (each subset needs
                // its own vector anyway — the arena takes ownership)
                for_each_combination(fresh.len(), max_len.min(fresh.len()), &mut |fidx| {
                    if fidx.is_empty() {
                        return Ok(()); // the all-old subsets are skipped
                    }
                    let old_room = max_len - fidx.len();
                    for_each_combination(old.len(), old_room.min(old.len()), &mut |oidx| {
                        let subset: Vec<VId> = fidx
                            .iter()
                            .map(|&i| fresh[i])
                            .chain(oidx.iter().map(|&i| old[i]))
                            .collect();
                        stream_one_interned(feid, subset, base_size, &mut acc, &mut acc_size, ctx)
                    })
                })?;
            }
            None => {
                for_each_combination(items.len(), max_len, &mut |idx| {
                    let subset: Vec<VId> = idx.iter().map(|&i| items[i]).collect();
                    stream_one_interned(feid, subset, base_size, &mut acc, &mut acc_size, ctx)
                })?;
            }
        }
        let output = ctx.va.set(acc);
        if ctx.config.semi_naive {
            ctx.subset_delta.insert(
                feid,
                SubsetDeltaEntry {
                    base,
                    bound,
                    output,
                },
            );
        }
        Ok(Lv::Concrete(output))
    } else {
        // The default route: subsets are deliberately built as
        // *transient tree values* and evaluated on the tree path —
        // interning them would retain all 2ᵏ subsets in the
        // never-shrinking arena, silently trading the strategy's
        // polynomial peak-resident guarantee for speed. Only the images
        // — genuinely live in the accumulator — are interned.
        let elems: Vec<Value> = items.iter().map(|&e| ctx.va.resolve(e)).collect();
        for_each_combination(elems.len(), max_len, &mut |idx| {
            let subset = Value::set(idx.iter().map(|&i| elems[i].clone()));
            ctx.stats.streamed_subsets += 1;
            let live = base_size + subset.size() + acc_size;
            let image = ctx.eager_sub_tree(f, &subset, live)?;
            let image = ctx.va.intern(&image);
            if acc.insert(image) {
                acc_size += ctx.va.size(image);
            }
            ctx.resident(live)
        })?;
        let output = ctx.va.set(acc);
        Ok(Lv::Concrete(output))
    }
}

/// Stream one interned subset through the shared walker, folding its
/// image into the accumulator.
fn stream_one_interned(
    feid: EId,
    subset: Vec<VId>,
    base_size: u64,
    acc: &mut BTreeSet<VId>,
    acc_size: &mut u64,
    ctx: &mut LazyCtx,
) -> Result<(), EvalError> {
    let subset = ctx.va.set_from_vec(subset);
    ctx.stats.streamed_subsets += 1;
    let live = base_size + ctx.va.size(subset) + *acc_size;
    let image = ctx.eager_sub_eid(feid, subset, live)?;
    if acc.insert(image) {
        *acc_size += ctx.va.size(image);
    }
    ctx.resident(live)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eager::evaluate;
    use nra_core::builder::*;
    use nra_core::queries;

    #[test]
    fn lazy_agrees_with_eager_on_queries() {
        let cfg = EvalConfig::default();
        for n in 0..6u64 {
            let input = Value::chain(n);
            for q in [
                queries::tc_paths(),
                queries::tc_while(),
                queries::siblings_powerset(),
                compose(flatten(), map(sng())),
            ] {
                let eager_out = evaluate(&q, &input, &cfg).result.unwrap();
                let lazy_out = evaluate_lazy(&q, &input, &cfg).result.unwrap();
                assert_eq!(eager_out, lazy_out, "n = {n}");
            }
        }
    }

    #[test]
    fn streaming_keeps_peak_resident_small() {
        let cfg = EvalConfig::default();
        let q = queries::tc_paths();
        let n = 9;
        let eager_ev = evaluate(&q, &Value::chain(n), &cfg);
        let lazy_ev = evaluate_lazy(&q, &Value::chain(n), &cfg);
        assert_eq!(eager_ev.result.unwrap(), lazy_ev.result.clone().unwrap());
        let eager_peak = eager_ev.stats.max_object_size;
        let lazy_peak = lazy_ev.stats.peak_resident;
        // eager materialises powerset(r₉): > 2⁹ · something; lazy holds a
        // few polynomial objects.
        assert!(
            eager_peak > 8 * lazy_peak,
            "eager {eager_peak} vs lazy {lazy_peak}"
        );
        // but the *time* (streamed subsets) is still 2⁹
        assert_eq!(lazy_ev.stats.streamed_subsets, 512);
    }

    #[test]
    fn flatten_of_powerset_is_identity() {
        let q = compose(flatten(), powerset());
        let v = Value::chain(5);
        let ev = evaluate_lazy(&q, &v, &EvalConfig::default());
        assert_eq!(ev.result.unwrap(), v);
        // no subsets were ever streamed
        assert_eq!(ev.stats.streamed_subsets, 0);
    }

    #[test]
    fn flatten_of_powerset_m_respects_the_bound() {
        let v = Value::chain(4);
        // m ≥ 1: the subsets' union is the base itself
        let q = compose(flatten(), powerset_m_prim(2));
        let ev = evaluate_lazy(&q, &v, &EvalConfig::default());
        assert_eq!(ev.result.unwrap(), v);
        assert_eq!(ev.stats.streamed_subsets, 0);
        // m = 0: powerset₀(x) = {∅}, whose union is ∅
        let q0 = compose(flatten(), powerset_m_prim(0));
        let ev0 = evaluate_lazy(&q0, &v, &EvalConfig::default());
        assert_eq!(ev0.result.unwrap(), Value::empty_set());
    }

    #[test]
    fn powerset_m_streams_only_bounded_subsets() {
        // map(sng) over powersetₘ(r₄): Σ_{i≤2} C(4,i) = 11 subsets
        let q = compose(map(sng()), powerset_m_prim(2));
        let input = Value::chain(4);
        let lazy_ev = evaluate_lazy(&q, &input, &EvalConfig::default());
        let eager_ev = evaluate(&q, &input, &EvalConfig::default());
        assert_eq!(lazy_ev.result.unwrap(), eager_ev.result.unwrap());
        assert_eq!(lazy_ev.stats.streamed_subsets, 11);
    }

    #[test]
    fn isempty_of_powerset_short_circuits() {
        let q = compose(is_empty(), powerset());
        let ev = evaluate_lazy(&q, &Value::empty_set(), &EvalConfig::default());
        assert_eq!(ev.result.unwrap(), Value::FALSE);
        assert_eq!(ev.stats.streamed_subsets, 0);
    }

    #[test]
    fn budget_applies_to_resident_not_streamed_total() {
        // A budget far below the eager powerset size still admits the
        // streamed evaluation.
        let q = queries::tc_paths();
        let n = 8;
        let eager_needed = evaluate(&q, &Value::chain(n), &EvalConfig::default())
            .stats
            .max_object_size;
        let cfg = EvalConfig::with_space_budget(eager_needed / 4);
        let lazy_ev = evaluate_lazy(&q, &Value::chain(n), &cfg);
        assert!(lazy_ev.result.is_ok(), "{:?}", lazy_ev.result);
        let eager_ev = evaluate(&q, &Value::chain(n), &cfg);
        assert!(matches!(
            eager_ev.result,
            Err(EvalError::SpaceBudgetExceeded { .. })
        ));
    }

    #[test]
    fn streaming_does_not_retain_subsets_in_the_arena() {
        // the point of the strategy: 2ⁿ subsets are streamed, but they are
        // transient tree values — the arena must grow by far less than 2ⁿ
        // (only the base, the images actually live in the accumulator, and
        // boundary conversions)
        let n = 10u64;
        let input = intern::chain(n);
        let before = intern::arena_stats().nodes;
        let ev = evaluate_lazy_vid(&queries::tc_paths(), input, &EvalConfig::default());
        assert_eq!(ev.result.unwrap(), intern::chain_tc(n));
        assert_eq!(ev.stats.streamed_subsets, 1 << n);
        let delta = intern::arena_stats().nodes - before;
        assert!(
            delta < (1 << n) / 2,
            "arena grew by {delta} nodes for 2^{n} streamed subsets — \
             transient subsets are being retained"
        );
    }

    #[test]
    fn lazy_vid_stays_on_handles() {
        let input = intern::chain(6);
        let ev = evaluate_lazy_vid(&queries::tc_paths(), input, &EvalConfig::default());
        assert_eq!(ev.result.unwrap(), intern::chain_tc(6));
    }
}
