//! Materialised derivation trees.
//!
//! §3 defines evaluation `f(C) ⇓ C'` as "a tree, whose nodes are labeled by
//! the rules above, and whose root contains `f(C) ⇓ C'`. The height of the
//! tree depends only on `f`, not on `C`. But the width of this tree may
//! depend on `C`." This module builds that tree explicitly (for inputs
//! small enough to inspect) so that tests and examples can check the
//! height/width claims and render derivations.
//!
//! Like [`crate::eager`], the recursion runs on interned handles — the §3
//! size observations are `O(1)` metadata reads — and each [`DerivNode`]
//! resolves its judgment back to tree [`Value`]s for inspection (the whole
//! point of tracing is to look at the objects).

use crate::eager::{apply_leaf_vid, Ctx};
use crate::error::{EvalConfig, EvalError};
use crate::stats::EvalStats;
use nra_core::expr::Expr;
use nra_core::value::intern::{self, VId};
use nra_core::value::Value;
use std::fmt::Write as _;

/// One node of a derivation tree: the rule applied, the judgment
/// `input ⇓ output`, and the sub-derivations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivNode {
    /// The rule label (an `Expr::head_name`).
    pub rule: &'static str,
    /// The argument object `C`.
    pub input: Value,
    /// The result object `C'`.
    pub output: Value,
    /// Sub-derivations, in evaluation order.
    pub children: Vec<DerivNode>,
}

impl DerivNode {
    /// Total number of nodes of the tree.
    pub fn node_count(&self) -> u64 {
        1 + self.children.iter().map(DerivNode::node_count).sum::<u64>()
    }

    /// Height of the tree (a single node has height 1). §3: "the height of
    /// the tree depends only on f, not on C".
    pub fn height(&self) -> u64 {
        1 + self
            .children
            .iter()
            .map(DerivNode::height)
            .max()
            .unwrap_or(0)
    }

    /// Maximum branching factor (§3: "the width of this tree may depend on
    /// C").
    pub fn max_branching(&self) -> usize {
        self.children.len().max(
            self.children
                .iter()
                .map(DerivNode::max_branching)
                .max()
                .unwrap_or(0),
        )
    }

    /// The largest object size occurring in the tree — the §3 complexity,
    /// recomputed from the materialised tree (tests check it against the
    /// streaming statistics).
    pub fn max_object_size(&self) -> u64 {
        let here = self.input.size().max(self.output.size());
        self.children
            .iter()
            .map(DerivNode::max_object_size)
            .fold(here, u64::max)
    }

    /// Render the tree with one judgment per line, truncating objects to
    /// `width` characters.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0, width);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize, width: usize) {
        let clip = |v: &Value| {
            let s = v.to_string();
            if s.len() > width {
                let mut end = width;
                while end > 0 && !s.is_char_boundary(end) {
                    end -= 1;
                }
                format!("{}…", &s[..end])
            } else {
                s
            }
        };
        let _ = writeln!(
            out,
            "{}[{}] {} ⇓ {}",
            "  ".repeat(depth),
            self.rule,
            clip(&self.input),
            clip(&self.output),
        );
        for child in &self.children {
            child.render_into(out, depth + 1, width);
        }
    }
}

/// A traced evaluation: the derivation tree (or error) plus §3 statistics
/// identical to what the plain evaluator would report.
#[derive(Debug, Clone)]
pub struct TracedEvaluation {
    /// The derivation tree, or the error that interrupted it.
    pub result: Result<DerivNode, EvalError>,
    /// §3 statistics.
    pub stats: EvalStats,
}

/// Evaluate while materialising the full derivation tree. Use only on
/// small inputs — the tree holds every intermediate object in resolved
/// (tree) form. Budgets from `config` apply exactly as in
/// [`crate::eager::evaluate`].
pub fn evaluate_traced(expr: &Expr, input: &Value, config: &EvalConfig) -> TracedEvaluation {
    let mut ctx = Ctx::new(config);
    let iv = intern::intern(input);
    let result = trace_in(expr, iv, &mut ctx).map(|(node, _)| node);
    TracedEvaluation {
        result,
        stats: ctx.stats,
    }
}

/// One derivation node: returns the materialised node plus the interned
/// handle of its output (so parents can keep evaluating on handles).
fn trace_in(expr: &Expr, input: VId, ctx: &mut Ctx) -> Result<(DerivNode, VId), EvalError> {
    ctx.node(expr.head_name())?;
    ctx.observe_vid(input)?;
    let (output, children) = match expr {
        Expr::Tuple(f, g) => {
            let (a, av) = trace_in(f, input, ctx)?;
            let (b, bv) = trace_in(g, input, ctx)?;
            (intern::pair(av, bv), vec![a, b])
        }
        Expr::Map(f) => {
            let items = intern::as_set(input).ok_or(EvalError::Stuck {
                rule: "map",
                detail: "input is not a set".into(),
            })?;
            let mut children = Vec::with_capacity(items.len());
            let mut out = Vec::with_capacity(items.len());
            for &item in items.iter() {
                let (child, cv) = trace_in(f, item, ctx)?;
                out.push(cv);
                children.push(child);
            }
            (intern::set(out), children)
        }
        Expr::Cond(c, then, els) => {
            let (cnode, cv) = trace_in(c, input, ctx)?;
            let (branch, bv) = match intern::as_bool(cv) {
                Some(true) => trace_in(then, input, ctx)?,
                Some(false) => trace_in(els, input, ctx)?,
                None => {
                    return Err(EvalError::Stuck {
                        rule: "if",
                        detail: "condition is not boolean".into(),
                    })
                }
            };
            (bv, vec![cnode, branch])
        }
        Expr::Compose(g, f) => {
            let (fnode, fv) = trace_in(f, input, ctx)?;
            let (gnode, gv) = trace_in(g, fv, ctx)?;
            (gv, vec![fnode, gnode])
        }
        Expr::While(f) => {
            let mut children = Vec::new();
            let mut current = input;
            let mut iterations: u64 = 0;
            loop {
                let (child, next) = trace_in(f, current, ctx)?;
                children.push(child);
                iterations += 1;
                ctx.stats.while_iterations += 1;
                if next == current {
                    break;
                }
                if iterations >= ctx.config.max_while_iters {
                    return Err(EvalError::WhileDiverged { iterations });
                }
                current = next;
            }
            (current, children)
        }
        leaf => (apply_leaf_vid(leaf, input, ctx)?, Vec::new()),
    };
    ctx.observe_vid(output)?;
    let node = DerivNode {
        rule: expr.head_name(),
        input: intern::resolve(input),
        output: intern::resolve(output),
        children,
    };
    Ok((node, output))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eager::evaluate;
    use nra_core::builder::*;

    #[test]
    fn trace_agrees_with_plain_evaluation() {
        let cfg = EvalConfig::default();
        let queries = [
            compose(flatten(), map(sng())),
            nra_core::queries::tc_step(),
            nra_core::queries::tc_while(),
            compose(
                map(nra_core::derived::is_singleton(&nra_core::Type::prod(
                    nra_core::Type::Nat,
                    nra_core::Type::Nat,
                ))),
                powerset(),
            ),
        ];
        for q in &queries {
            for n in 0..4u64 {
                let input = Value::chain(n);
                let plain = evaluate(q, &input, &cfg);
                let traced = evaluate_traced(q, &input, &cfg);
                let tree = traced.result.unwrap();
                assert_eq!(tree.output, plain.result.unwrap());
                assert_eq!(traced.stats, plain.stats, "stats must coincide");
                assert_eq!(tree.node_count(), traced.stats.nodes);
                assert_eq!(tree.max_object_size(), traced.stats.max_object_size);
            }
        }
    }

    #[test]
    fn height_depends_only_on_the_expression() {
        // §3: height is input-independent (for expressions without
        // while/compose-on-data effects — map children all have equal
        // height because the body is fixed).
        let q = compose(flatten(), map(sng()));
        let h: Vec<u64> = (1..5)
            .map(|n| {
                evaluate_traced(&q, &Value::chain(n), &EvalConfig::default())
                    .result
                    .unwrap()
                    .height()
            })
            .collect();
        assert!(h.windows(2).all(|w| w[0] == w[1]), "{h:?}");
    }

    #[test]
    fn width_depends_on_the_input() {
        let q = map(sng());
        let widths: Vec<usize> = (1..5)
            .map(|n| {
                evaluate_traced(&q, &Value::chain(n), &EvalConfig::default())
                    .result
                    .unwrap()
                    .max_branching()
            })
            .collect();
        assert_eq!(widths, vec![1, 2, 3, 4]);
    }

    #[test]
    fn renders_readably() {
        let q = compose(is_empty(), map(sng()));
        let tree = evaluate_traced(&q, &Value::chain(1), &EvalConfig::default())
            .result
            .unwrap();
        let text = tree.render(40);
        assert!(text.contains("[compose]"));
        assert!(text.contains("[isempty]"));
        assert!(text.lines().count() as u64 == tree.node_count());
    }
}
