//! Materialised derivation trees.
//!
//! §3 defines evaluation `f(C) ⇓ C'` as "a tree, whose nodes are labeled by
//! the rules above, and whose root contains `f(C) ⇓ C'`. The height of the
//! tree depends only on `f`, not on `C`. But the width of this tree may
//! depend on `C`." This module builds that tree explicitly (for inputs
//! small enough to inspect) so that tests and examples can check the
//! height/width claims and render derivations.
//!
//! Like [`crate::eager`], the recursion runs on interned handles — the §3
//! size observations are `O(1)` metadata reads — and each [`DerivNode`]
//! resolves its judgment back to tree [`Value`]s for inspection (the whole
//! point of tracing is to look at the objects).
//!
//! Under [`EvalConfig::memo`] the builder also consults the apply cache:
//! a judgment `f(C) ⇓ C'` already derived is *shared* — the cached
//! sub-derivation is grafted in as an [`Rc`] pointer copy instead of
//! being re-derived, which is the reason [`DerivNode::children`] holds
//! `Rc<DerivNode>`s. The materialised tree is bit-for-bit equal to the
//! unmemoised one (evaluation is pure), but repeated subtrees occupy
//! memory once, and — as in [`crate::eager`] — a hit counts in
//! [`EvalStats::memo_hits`](crate::stats::EvalStats::memo_hits) rather
//! than re-counting the skipped derivation's nodes and observations.
//! Keep memo off (the default) when the statistics must be the exact §3
//! accounting.

use crate::eager::{apply_leaf_vid, record_frontier, Ctx};
use crate::error::{EvalConfig, EvalError};
use crate::stats::EvalStats;
use nra_core::expr::intern::{self as expr_intern, EId, ENode, ExprArena};
use nra_core::expr::Expr;
use nra_core::value::intern::{self, FxBuildHasher, VId, ValueArena};
use nra_core::value::Value;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// One node of a derivation tree: the rule applied, the judgment
/// `input ⇓ output`, and the sub-derivations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivNode {
    /// The rule label (an `Expr::head_name`).
    pub rule: &'static str,
    /// The argument object `C`.
    pub input: Value,
    /// The result object `C'`.
    pub output: Value,
    /// Sub-derivations, in evaluation order. `Rc`-shared so the memoised
    /// builder can graft an already-derived subtree in `O(1)`; all tree
    /// measures ([`DerivNode::node_count`], …) count with multiplicity,
    /// as the §3 tree semantics require.
    pub children: Vec<Rc<DerivNode>>,
}

impl DerivNode {
    /// Total number of nodes of the tree (with multiplicity — shared
    /// subtrees count each time they occur).
    pub fn node_count(&self) -> u64 {
        1 + self.children.iter().map(|c| c.node_count()).sum::<u64>()
    }

    /// Height of the tree (a single node has height 1). §3: "the height of
    /// the tree depends only on f, not on C".
    pub fn height(&self) -> u64 {
        1 + self.children.iter().map(|c| c.height()).max().unwrap_or(0)
    }

    /// Maximum branching factor (§3: "the width of this tree may depend on
    /// C").
    pub fn max_branching(&self) -> usize {
        self.children.len().max(
            self.children
                .iter()
                .map(|c| c.max_branching())
                .max()
                .unwrap_or(0),
        )
    }

    /// The largest object size occurring in the tree — the §3 complexity,
    /// recomputed from the materialised tree (tests check it against the
    /// streaming statistics).
    pub fn max_object_size(&self) -> u64 {
        let here = self.input.size().max(self.output.size());
        self.children
            .iter()
            .map(|c| c.max_object_size())
            .fold(here, u64::max)
    }

    /// Render the tree with one judgment per line, truncating objects to
    /// `width` characters.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0, width);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize, width: usize) {
        let clip = |v: &Value| {
            let s = v.to_string();
            if s.len() > width {
                let mut end = width;
                while end > 0 && !s.is_char_boundary(end) {
                    end -= 1;
                }
                format!("{}…", &s[..end])
            } else {
                s
            }
        };
        let _ = writeln!(
            out,
            "{}[{}] {} ⇓ {}",
            "  ".repeat(depth),
            self.rule,
            clip(&self.input),
            clip(&self.output),
        );
        for child in &self.children {
            child.render_into(out, depth + 1, width);
        }
    }
}

/// A traced evaluation: the derivation tree (or error) plus §3 statistics
/// identical to what the plain evaluator would report.
#[derive(Debug, Clone)]
pub struct TracedEvaluation {
    /// The derivation tree, or the error that interrupted it.
    pub result: Result<DerivNode, EvalError>,
    /// §3 statistics.
    pub stats: EvalStats,
}

/// The trace-side apply cache: each derived judgment keyed by
/// `(interned expression, interned input)`, holding the shared
/// sub-derivation, its output handle, and the as-if-uncached cost of
/// the subtree (charged on a hit so node budgets stay
/// strategy-independent).
type TraceMemo = HashMap<(EId, VId), (Rc<DerivNode>, VId, u64), FxBuildHasher>;

/// The trace-side delta cache (semi-naive iteration): per `map` node,
/// the last application's input/output and its per-element
/// sub-derivations `element ↦ (shared child, image, cost)`, so a
/// grown input re-derives the frontier only and grafts the rest.
type TraceDelta = HashMap<EId, TraceDeltaEntry, FxBuildHasher>;

struct TraceDeltaEntry {
    input: VId,
    children: HashMap<VId, (Rc<DerivNode>, VId, u64), FxBuildHasher>,
}

/// Evaluate while materialising the full derivation tree. Use only on
/// small inputs — the tree holds every intermediate object in resolved
/// (tree) form. Budgets from `config` apply exactly as in
/// [`crate::eager::evaluate`]; under [`EvalConfig::memo`] repeated
/// judgments are grafted from the apply cache as shared subtrees (see
/// the module docs for the statistics caveat).
pub fn evaluate_traced(expr: &Expr, input: &Value, config: &EvalConfig) -> TracedEvaluation {
    intern::with_arena(|va| expr_intern::with_arena(|ea| trace_with(expr, input, config, ea, va)))
}

/// Run one traced evaluation against explicitly supplied arenas — the
/// engine-layer entry point sessions call; [`evaluate_traced`] is its
/// thread-local facade. The trace-side memo/delta caches are per-call
/// (they hold `Rc`-shared materialised subtrees, not session state).
pub(crate) fn trace_with(
    expr: &Expr,
    input: &Value,
    config: &EvalConfig,
    ea: &mut ExprArena,
    va: &mut ValueArena,
) -> TracedEvaluation {
    let mut ctx = Ctx::new(config);
    let (dense_ops0, dense_promotions0) = va.dense_counters();
    let iv = va.intern(input);
    let eid = ea.intern(expr);
    let mut memo: Option<TraceMemo> = config.memo.then(TraceMemo::default);
    let mut delta: Option<TraceDelta> = config.semi_naive.then(TraceDelta::default);
    let traced = trace_eid(eid, iv, &mut ctx, &mut memo, &mut delta, ea, va);
    // release the caches' Rc references first, so the root node is
    // uniquely owned and unwraps without an O(object-size) deep clone
    drop(memo);
    drop(delta);
    let result =
        traced.map(|(node, _)| Rc::try_unwrap(node).unwrap_or_else(|shared| (*shared).clone()));
    let mut stats = ctx.finish();
    let (dense_ops1, dense_promotions1) = va.dense_counters();
    stats.dense_ops = dense_ops1 - dense_ops0;
    stats.dense_promotions = dense_promotions1 - dense_promotions0;
    TracedEvaluation { result, stats }
}

/// One derivation node over the *interned* expression: returns the
/// materialised node plus the interned handle of its output (so parents
/// can keep evaluating on handles). With `memo` present (under
/// [`EvalConfig::memo`]) every judgment is first looked up in the apply
/// cache — a hit grafts the cached subtree in as an `Rc` copy and skips
/// the re-derivation, counting in
/// [`EvalStats::memo_hits`](crate::stats::EvalStats::memo_hits) instead
/// of the §3 counters; with `memo` absent this is the exact §3 builder
/// (its statistics coincide with the plain eager evaluator's).
#[allow(clippy::too_many_arguments)]
fn trace_eid(
    eid: EId,
    input: VId,
    ctx: &mut Ctx,
    memo: &mut Option<TraceMemo>,
    delta: &mut Option<TraceDelta>,
    ea: &ExprArena,
    va: &mut ValueArena,
) -> Result<(Rc<DerivNode>, VId), EvalError> {
    if let Some(memo) = memo.as_ref() {
        if let Some((node, out, cost)) = memo.get(&(eid, input)) {
            ctx.stats.memo_hits += 1;
            let (node, out, cost) = (Rc::clone(node), *out, *cost);
            ctx.charge(cost)?;
            return Ok((node, out));
        }
        ctx.stats.memo_misses += 1;
    }
    let cost_start = ctx.charged_nodes;
    let enode = ea.node(eid);
    let rule = enode.head_name();
    ctx.node(enode.head_index())?;
    ctx.observe_vid(va, input)?;
    let (output, children) = match enode {
        ENode::Tuple(f, g) => {
            let (a, av) = trace_eid(f, input, ctx, memo, delta, ea, va)?;
            let (b, bv) = trace_eid(g, input, ctx, memo, delta, ea, va)?;
            (va.pair(av, bv), vec![a, b])
        }
        ENode::Map(f) => trace_map(eid, f, input, ctx, memo, delta, ea, va)?,
        ENode::Cond(c, then, els) => {
            let (cnode, cv) = trace_eid(c, input, ctx, memo, delta, ea, va)?;
            let (branch, bv) = match va.as_bool(cv) {
                Some(true) => trace_eid(then, input, ctx, memo, delta, ea, va)?,
                Some(false) => trace_eid(els, input, ctx, memo, delta, ea, va)?,
                None => {
                    return Err(EvalError::Stuck {
                        rule: "if",
                        detail: "condition is not boolean".into(),
                    })
                }
            };
            (bv, vec![cnode, branch])
        }
        ENode::Compose(g, f) => {
            let (fnode, fv) = trace_eid(f, input, ctx, memo, delta, ea, va)?;
            let (gnode, gv) = trace_eid(g, fv, ctx, memo, delta, ea, va)?;
            (gv, vec![fnode, gnode])
        }
        ENode::While(f) => {
            let mut children = Vec::new();
            let mut current = input;
            let mut iterations: u64 = 0;
            loop {
                let (child, next) = trace_eid(f, current, ctx, memo, delta, ea, va)?;
                children.push(child);
                iterations += 1;
                ctx.stats.while_iterations += 1;
                // thread (total, delta), exactly as the eager walker
                record_frontier(ctx, va, current, next);
                if next == current {
                    break;
                }
                if iterations >= ctx.config.max_while_iters {
                    return Err(EvalError::WhileDiverged { iterations });
                }
                current = next;
            }
            (current, children)
        }
        ENode::Leaf(leaf) => (apply_leaf_vid(&leaf, input, ctx, va)?, Vec::new()),
    };
    ctx.observe_vid(va, output)?;
    let node = Rc::new(DerivNode {
        rule,
        input: va.resolve(input),
        output: va.resolve(output),
        children,
    });
    if let Some(memo) = memo.as_mut() {
        memo.insert(
            (eid, input),
            (Rc::clone(&node), output, ctx.charged_nodes - cost_start),
        );
    }
    Ok((node, output))
}

/// The `map` rule of [`trace_eid`]: under [`EvalConfig::semi_naive`], a
/// grown input re-derives only the frontier elements and grafts the
/// previous application's per-element sub-derivations in as `Rc`
/// copies — the materialised tree is bit-for-bit the naive one
/// (evaluation is pure), with the reused elements' recorded costs
/// charged against the node budget exactly as the eager walker does.
#[allow(clippy::type_complexity)]
#[allow(clippy::too_many_arguments)]
fn trace_map(
    eid: EId,
    f: EId,
    input: VId,
    ctx: &mut Ctx,
    memo: &mut Option<TraceMemo>,
    delta: &mut Option<TraceDelta>,
    ea: &ExprArena,
    va: &mut ValueArena,
) -> Result<(VId, Vec<Rc<DerivNode>>), EvalError> {
    let items = va.as_set(input).ok_or(EvalError::Stuck {
        rule: "map",
        detail: "input is not a set".into(),
    })?;
    // take the node's previous application out of the cache (no map
    // node can recursively contain itself, so nothing re-enters)
    let prev = delta.as_mut().and_then(|d| d.remove(&eid));
    let reusable = prev.and_then(|e| {
        if e.input == input {
            return Some((e, va.empty_set()));
        }
        let (union, fresh) = va.set_merge_delta(e.input, input)?;
        (union == input).then_some((e, fresh))
    });
    let mut children = Vec::with_capacity(items.len());
    let mut out = Vec::with_capacity(items.len());
    match reusable {
        Some((mut entry, fresh)) => {
            let fresh_items = va.as_set(fresh).expect("frontier is a set");
            ctx.stats.delta_hits += 1;
            ctx.stats.delta_skipped += (items.len() - fresh_items.len()) as u64;
            for &item in items.iter() {
                if fresh_items.binary_search(&item).is_err() {
                    // carried over from the previous application: graft
                    // the shared subtree and charge its recorded cost
                    let (child, cv, cost) =
                        entry.children.get(&item).expect("previous element traced");
                    let (child, cv, cost) = (Rc::clone(child), *cv, *cost);
                    ctx.charge(cost)?;
                    out.push(cv);
                    children.push(child);
                } else {
                    let start = ctx.charged_nodes;
                    let (child, cv) = trace_eid(f, item, ctx, memo, delta, ea, va)?;
                    entry
                        .children
                        .insert(item, (Rc::clone(&child), cv, ctx.charged_nodes - start));
                    out.push(cv);
                    children.push(child);
                }
            }
            let output = va.set_from_vec(out);
            entry.input = input;
            if let Some(d) = delta.as_mut() {
                d.insert(eid, entry);
            }
            Ok((output, children))
        }
        None => {
            let mut fresh_children: HashMap<VId, (Rc<DerivNode>, VId, u64), FxBuildHasher> =
                HashMap::default();
            for &item in items.iter() {
                let start = ctx.charged_nodes;
                let (child, cv) = trace_eid(f, item, ctx, memo, delta, ea, va)?;
                if delta.is_some() {
                    fresh_children.insert(item, (Rc::clone(&child), cv, ctx.charged_nodes - start));
                }
                out.push(cv);
                children.push(child);
            }
            let output = va.set_from_vec(out);
            if let Some(d) = delta.as_mut() {
                d.insert(
                    eid,
                    TraceDeltaEntry {
                        input,
                        children: fresh_children,
                    },
                );
            }
            Ok((output, children))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eager::evaluate;
    use nra_core::builder::*;

    #[test]
    fn trace_agrees_with_plain_evaluation() {
        let cfg = EvalConfig::default();
        let queries = [
            compose(flatten(), map(sng())),
            nra_core::queries::tc_step(),
            nra_core::queries::tc_while(),
            compose(
                map(nra_core::derived::is_singleton(&nra_core::Type::prod(
                    nra_core::Type::Nat,
                    nra_core::Type::Nat,
                ))),
                powerset(),
            ),
        ];
        for q in &queries {
            for n in 0..4u64 {
                let input = Value::chain(n);
                let plain = evaluate(q, &input, &cfg);
                let traced = evaluate_traced(q, &input, &cfg);
                let tree = traced.result.unwrap();
                assert_eq!(tree.output, plain.result.unwrap());
                assert_eq!(traced.stats, plain.stats, "stats must coincide");
                assert_eq!(tree.node_count(), traced.stats.nodes);
                assert_eq!(tree.max_object_size(), traced.stats.max_object_size);
            }
        }
    }

    #[test]
    fn height_depends_only_on_the_expression() {
        // §3: height is input-independent (for expressions without
        // while/compose-on-data effects — map children all have equal
        // height because the body is fixed).
        let q = compose(flatten(), map(sng()));
        let h: Vec<u64> = (1..5)
            .map(|n| {
                evaluate_traced(&q, &Value::chain(n), &EvalConfig::default())
                    .result
                    .unwrap()
                    .height()
            })
            .collect();
        assert!(h.windows(2).all(|w| w[0] == w[1]), "{h:?}");
    }

    #[test]
    fn width_depends_on_the_input() {
        let q = map(sng());
        let widths: Vec<usize> = (1..5)
            .map(|n| {
                evaluate_traced(&q, &Value::chain(n), &EvalConfig::default())
                    .result
                    .unwrap()
                    .max_branching()
            })
            .collect();
        assert_eq!(widths, vec![1, 2, 3, 4]);
    }

    #[test]
    fn memoised_trace_is_bit_identical_and_reports_hits() {
        let cfg = EvalConfig::default();
        let memo_cfg = EvalConfig::memoised();
        for q in [
            compose(flatten(), map(sng())),
            nra_core::queries::tc_step(),
            nra_core::queries::tc_while(),
        ] {
            for n in 0..5u64 {
                let input = Value::chain(n);
                let plain = evaluate_traced(&q, &input, &cfg);
                let memo = evaluate_traced(&q, &input, &memo_cfg);
                let pt = plain.result.unwrap();
                let mt = memo.result.unwrap();
                // the materialised tree is bit-for-bit the unmemoised one
                assert_eq!(pt, mt, "{q} n={n}");
                // hits replace re-derivations: the §3 node count can only
                // shrink, while the complexity (a max over the same set of
                // distinct judgments) is untouched
                assert!(memo.stats.nodes <= plain.stats.nodes, "{q} n={n}");
                assert_eq!(
                    memo.stats.max_object_size, plain.stats.max_object_size,
                    "{q} n={n}"
                );
                assert_eq!(plain.stats.memo_hits, 0, "memo-off must not count");
            }
        }
        // the while route actually exercises the cache: its body re-visits
        // elements already mapped in earlier iterates
        let memo = evaluate_traced(&nra_core::queries::tc_while(), &Value::chain(3), &memo_cfg);
        assert!(memo.stats.memo_hits > 0, "expected apply-cache hits");
    }

    #[test]
    fn renders_readably() {
        let q = compose(is_empty(), map(sng()));
        let tree = evaluate_traced(&q, &Value::chain(1), &EvalConfig::default())
            .result
            .unwrap();
        let text = tree.render(40);
        assert!(text.contains("[compose]"));
        assert!(text.contains("[isempty]"));
        assert!(text.lines().count() as u64 == tree.node_count());
    }
}
