//! The **compiled bytecode backend**: flatten the hash-consed `EId` DAG
//! into a flat register-VM program and retire interpretive dispatch from
//! the hot path.
//!
//! `compile` runs one post-order pass over the snapshotted
//! [`ExprArena`](nra_core::expr::intern::ExprArena) DAG and emits one
//! **routine** (a contiguous instruction block) per unique reachable
//! [`EId`]:
//!
//! * virtual **registers** hold [`VId`](nra_core::value::intern::VId) slots; every routine gets a
//!   statically allocated private window (its input register doubles as
//!   the `while` accumulator), which is sound because calls only ever
//!   target *strict subterms* of the acyclic DAG — no routine can be
//!   active twice;
//! * `while` lowers to a **loop header with a frontier-aware back-edge**
//!   ([`Inst::WhileStep`] counts the iterate, records the semi-naive
//!   `(total, delta)` frontier, runs the fixpoint test and the
//!   divergence cap — exactly the interpreter's order), `if` lowers to a
//!   **diamond** ([`Inst::Branch`]);
//! * the Prop 2.1 shapes the semi-naive walker recognises at every
//!   visit are recognised **once, at compile time**, and emitted as
//!   fused superinstructions ([`Inst::Fused`]) that call the same fused
//!   rule bodies as the interpreter's `eval_eid` — recognition is
//!   structural over `EId`s and input-independent, so resolving it
//!   statically changes no behaviour, it only deletes the per-visit
//!   pre-filter reads and recognition-cache lookups;
//! * `map` lowers to an explicit iteration triple
//!   ([`Inst::MapBegin`]/[`Inst::MapIter`]/[`Inst::MapEnd`]) carrying
//!   the delta-cache probe and the merge-based frontier fold of the
//!   semi-naive rule; [`Inst::MapIter`] is a fused cursor+call+collect
//!   superinstruction that consumes consecutive memoised elements in a
//!   tight loop without re-entering the dispatcher.
//!
//! The register VM (the `vm` submodule) executes the program against a
//! [`ValueArena`](nra_core::value::intern::ValueArena): calls probe the
//! **same shared apply cache** with identically stamped `(EId, VId)`
//! keys ([`Inst::Call`] probes on entry, [`Inst::Ret`] stores the
//! recorded as-if-uncached cost on exit; the fused call forms
//! [`Inst::CallLeaf`] and [`Inst::CallEnter`] keep the exact same
//! probe/store protocol while deleting frame traffic and prologue
//! dispatches, and a closing **peephole pass** fuses the adjacent
//! `call.leaf; call.leaf` spine a `Compose` of two plain leaves emits
//! into one [`Inst::LeafPair`] superinstruction, remapping every
//! static program counter over the compacted vector), so warm starts
//! and
//! cross-worker sharing keep working — and the produced results,
//! [`EvalStats`](crate::stats::EvalStats), §3 rule counters and
//! `while_iterations` are **bit-for-bit identical** to the interpreted
//! walker under every `memo`/`semi_naive` combination (both
//! differential harnesses enforce this).
//!
//! Programs are cached per session keyed by root `EId` + the
//! `memo`/`semi_naive` switches + the expression-arena generation
//! (handles are stable within a generation because the arena is
//! append-only; a generation bump reissues them, so the cache is
//! dropped). [`disassemble`] renders a program as one instruction per
//! line and [`parse`] reads the rendering back — the `--disasm` debug
//! path, round-tripped in a unit test.

use crate::eager::{select_pred, Caches};
use crate::error::EvalConfig;
use nra_core::expr::intern::{EId, ENode};
use nra_core::expr::Expr;

pub(crate) mod vm;

/// A virtual register index into the VM's flat `VId` register file.
pub type Reg = u32;

/// The compile-time-recognised Prop 2.1 derived shapes — one variant
/// per fused rule of the semi-naive walker. Emitted as
/// [`Inst::Fused`] superinstructions; the VM dispatches straight into
/// the corresponding `eval_*_fused` body of [`crate::eager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedKind {
    /// The monomorphic derived product `cartprod` (recognised by handle
    /// equality against the interned derived term).
    Cartprod,
    /// The monomorphic `unnest = μ ∘ map(ρ₂)` term.
    Unnest,
    /// The selection shape `σ_p = μ ∘ map(if p then η else ∅ˢ ∘ !)`;
    /// carries the predicate's `EId` (its sub-derivations run through
    /// the interpreter, exactly as in the fused interpreter rule).
    Select(EId),
    /// Projection equality `=_N ∘ ⟨π-chain, π-chain⟩`.
    ProjEq,
    /// Projection tupling `⟨π-chain, π-chain⟩`.
    ProjPair,
    /// Set inclusion `empty ∘ σ_{¬∈} ∘ ρ₁` at a recognised type.
    Subset,
    /// Set membership `¬empty ∘ σ_{=ₜ} ∘ ρ₂` at a recognised type.
    Member,
    /// `nest(s,t) = map(⟨π₁, image⟩) ∘ ρ₁ ∘ ⟨map(π₁), id⟩`.
    Nest,
}

/// One bytecode instruction. Program counters (`entry`, `els`, `to`,
/// `done`, `back`) are absolute indices into the program's instruction
/// vector; registers are indices into the VM's flat register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// Probe-and-call: look the judgment `eid(regs[src])` up in the
    /// apply cache (under `memo`); on a hit, count it, charge its
    /// recorded cost, write `dst` and fall through — on a miss, push a
    /// frame carrying the `(EId, VId)` key and the caller's `dst`, copy
    /// `regs[src]` into the callee's input register `arg`, and jump to
    /// the callee routine at `entry`.
    Call {
        /// The callee expression node (the apply-cache key half).
        eid: EId,
        /// Entry pc of the callee routine.
        entry: u32,
        /// The callee's input register.
        arg: Reg,
        /// The caller's register holding the argument.
        src: Reg,
        /// The caller's register receiving the result.
        dst: Reg,
    },
    /// Fused probe-and-call of a **leaf** callee: on an apply-cache
    /// miss the primitive runs inline — open a cost window, count the
    /// node, run the leaf rule, store the judgment — with no frame
    /// traffic at all, since a leaf body cannot call further routines.
    CallLeaf {
        /// The callee leaf node (the apply-cache key half).
        eid: EId,
        /// The caller's register holding the argument.
        src: Reg,
        /// The caller's register receiving the result.
        dst: Reg,
    },
    /// Peephole fusion of two adjacent [`Inst::CallLeaf`]s threading
    /// one intermediate register — the shape a `Compose` of two plain
    /// leaves emits. Runs the first leaf's probe-or-primitive into
    /// `mid`, then the second's on `mid` into `dst`, one dispatch for
    /// the whole spine step. Both `mid` and `dst` are written, so the
    /// register file ends bit-identical to the unfused pair and no
    /// liveness analysis is needed.
    LeafPair {
        /// The first (inner) leaf node applied to `regs[src]`.
        e1: EId,
        /// The second (outer) leaf node applied to the first's output.
        e2: EId,
        /// The caller's register holding the argument.
        src: Reg,
        /// The intermediate register (the fused pair's seam).
        mid: Reg,
        /// The caller's register receiving the final result.
        dst: Reg,
    },
    /// Fused probe-and-call of a callee whose routine opens with the
    /// generic prologue ([`Inst::Enter`]): on a miss, the prologue runs
    /// inside the call — push the frame, open the cost window, count
    /// the node, observe the input — and control lands *past* the
    /// callee's `enter`, saving one dispatch per application.
    CallEnter {
        /// The callee expression node (the apply-cache key half).
        eid: EId,
        /// Entry pc of the callee routine, **past** its `enter`.
        entry: u32,
        /// The callee's input register.
        arg: Reg,
        /// The caller's register holding the argument.
        src: Reg,
        /// The caller's register receiving the result.
        dst: Reg,
        /// [`ENode::head_index`] of the callee's rule (the §3 counter).
        head: u32,
    },
    /// Generic-body prologue of a recursive rule: restart the current
    /// frame's cost window (a failed fused attempt's charges stay
    /// outside the stored cost, as in the interpreter), count the
    /// derivation node under rule index `head`, and observe the input.
    Enter {
        /// [`ENode::head_index`] of the rule (the §3 rule counter).
        head: u32,
        /// Register holding the rule's input.
        src: Reg,
    },
    /// A leaf rule: restart the frame's cost window, count the node,
    /// run the primitive (both §3 observations included).
    Leaf {
        /// The leaf node (looked up in the node snapshot at runtime).
        eid: EId,
        /// Input register.
        src: Reg,
        /// Output register.
        dst: Reg,
    },
    /// `μ` (flatten) under semi-naive: like [`Inst::Leaf`], but through
    /// the delta-cached incremental rule.
    FlattenDelta {
        /// The flatten node.
        eid: EId,
        /// Input register.
        src: Reg,
        /// Output register.
        dst: Reg,
    },
    /// A fused superinstruction attempt at routine entry: run the
    /// recognised shape's fused rule; on success behave exactly like
    /// [`Inst::Ret`] (store against the call-time cost window), on the
    /// rule's runtime `None` fall through to the generic body.
    Fused {
        /// Which fused rule to run.
        kind: FusedKind,
        /// The recognised node.
        eid: EId,
        /// Input register.
        src: Reg,
    },
    /// Pair formation `⟨a, b⟩ → dst`.
    Pair {
        /// First component register.
        a: Reg,
        /// Second component register.
        b: Reg,
        /// Output register.
        dst: Reg,
    },
    /// Diamond head of `if`: `true` falls through to the then-block,
    /// `false` jumps to `els`; a non-boolean is the rule's stuck state.
    Branch {
        /// Register holding the condition's value.
        cond: Reg,
        /// Entry pc of the else-block.
        els: u32,
    },
    /// Unconditional jump (closes the then-block of a diamond).
    Jump {
        /// Target pc.
        to: u32,
    },
    /// Loop header of `while`: zero the iteration counter.
    WhileBegin {
        /// The routine's while-state slot.
        slot: u32,
    },
    /// Frontier-aware back-edge of `while`: count the iterate, record
    /// the semi-naive `(total, delta)` frontier, run the fixpoint test
    /// (`next == cur` falls through with the result in `cur`), enforce
    /// the divergence cap, thread `cur ← next` and jump to `back`.
    WhileStep {
        /// The routine's while-state slot.
        slot: u32,
        /// Register holding the current iterate (the routine input).
        cur: Reg,
        /// Register holding the body's result.
        next: Reg,
        /// Pc of the loop body's [`Inst::Call`].
        back: u32,
    },
    /// Open a `map` iteration: extract the element list (stuck on a
    /// non-set), probe the delta cache (under semi-naive: a hit charges
    /// the recorded cost and restricts the iteration to the frontier),
    /// and open the rule's cost window.
    MapBegin {
        /// The routine's map-state slot.
        slot: u32,
        /// The map node (the delta-cache key).
        eid: EId,
        /// Input register.
        src: Reg,
    },
    /// Fused cursor+call+collect body of a `map` iteration: collect a
    /// pending image delivered by a returning body call, then advance
    /// the cursor — elements whose judgment is already in the apply
    /// cache are counted, charged and collected in a tight loop
    /// *without* re-entering the dispatcher; the first miss pushes a
    /// frame that returns to this very instruction, and exhaustion
    /// falls through to the closing [`Inst::MapEnd`].
    MapIter {
        /// The routine's map-state slot.
        slot: u32,
        /// The body expression node (the apply-cache key half).
        eid: EId,
        /// Entry pc of the body routine.
        entry: u32,
        /// The body routine's input register.
        arg: Reg,
        /// Scratch register a returning body call delivers into.
        ret: Reg,
    },
    /// Close a `map` iteration: intern the image set, fold it into the
    /// previous output on a delta hit, record the delta-cache entry
    /// with the window's cost, and write the result.
    MapEnd {
        /// The routine's map-state slot.
        slot: u32,
        /// The map node (the delta-cache key).
        eid: EId,
        /// Output register.
        dst: Reg,
    },
    /// Return from the current routine: under `observe`, first observe
    /// the output object (§3 bookkeeping of the recursive rules), then
    /// store the judgment in the apply cache against the open cost
    /// window, write the caller's `dst`, pop the frame and resume at
    /// its return pc (the root frame halts with the result instead).
    Ret {
        /// Register holding the routine's result.
        src: Reg,
        /// Whether the §3 output observation runs before the store
        /// (recursive rules: yes; leaf rules observe internally).
        observe: bool,
    },
}

/// A compiled program: the flat instruction vector plus the static
/// shape of its machine (register-file size, `map`/`while` state-slot
/// counts) and the `memo`/`semi_naive` switches it was specialised
/// for. Obtain one via [`crate::EvalSession::compiled_program`] (or
/// implicitly through [`EvalConfig::compiled`]); render with
/// [`disassemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    pub(crate) insts: Vec<Inst>,
    pub(crate) root: EId,
    pub(crate) entry: u32,
    pub(crate) root_in: Reg,
    pub(crate) regs: u32,
    pub(crate) map_slots: u32,
    pub(crate) while_slots: u32,
    pub(crate) memo: bool,
    pub(crate) semi_naive: bool,
}

impl Program {
    /// Number of instructions in the program.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty (it never is for a compiled DAG;
    /// the conventional companion of [`Program::len`]).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The root expression node this program evaluates.
    pub fn root(&self) -> EId {
        self.root
    }

    /// Size of the program's virtual register file.
    pub fn register_count(&self) -> u32 {
        self.regs
    }

    /// Approximate resident bytes of the instruction vector (the
    /// session layer's occupancy accounting).
    pub(crate) fn approx_resident_bytes(&self) -> usize {
        self.insts.len() * std::mem::size_of::<Inst>()
    }
}

/// Per-routine static allocation: the entry pc (patched during
/// emission) and the base of the routine's private register window.
struct Routine {
    entry: u32,
    base: Reg,
}

/// Compile-time recognition of the fused Prop 2.1 shapes — the same
/// dispatch [`crate::eager::eval_eid`] performs per visit, resolved
/// once per node. Recognition is structural over `EId`s (hash-consing
/// makes it input-independent), so this is exact.
fn fused_kind(eid: EId, nodes: &[ENode], caches: &mut Caches) -> Option<FusedKind> {
    if eid == caches.cartprod {
        return Some(FusedKind::Cartprod);
    }
    if eid == caches.unnest {
        return Some(FusedKind::Unnest);
    }
    match &nodes[eid.index()] {
        ENode::Compose(g, _) => match &nodes[g.index()] {
            ENode::Leaf(l) if **l == Expr::Flatten => {
                select_pred(eid, &nodes[eid.index()], nodes, caches).map(FusedKind::Select)
            }
            ENode::Leaf(l) if **l == Expr::EqNat => Some(FusedKind::ProjEq),
            ENode::Leaf(l) if **l == Expr::IsEmpty => Some(FusedKind::Subset),
            ENode::Compose(..) => Some(FusedKind::Member),
            ENode::Map(_) => Some(FusedKind::Nest),
            _ => None,
        },
        ENode::Tuple(..) => Some(FusedKind::ProjPair),
        _ => None,
    }
}

/// Reachable nodes of the DAG under `root`, children before parents
/// (iterative post-order, so deep `Compose` spines cannot overflow the
/// compiler's stack).
fn postorder(root: EId, nodes: &[ENode]) -> Vec<EId> {
    let mut order = Vec::new();
    let mut seen = vec![false; nodes.len()];
    // (node, children already expanded?)
    let mut stack = vec![(root, false)];
    while let Some((eid, expanded)) = stack.pop() {
        if expanded {
            order.push(eid);
            continue;
        }
        if seen[eid.index()] {
            continue;
        }
        seen[eid.index()] = true;
        stack.push((eid, true));
        match &nodes[eid.index()] {
            ENode::Leaf(_) => {}
            ENode::Map(f) | ENode::While(f) => stack.push((*f, false)),
            ENode::Tuple(f, g) | ENode::Compose(f, g) => {
                stack.push((*g, false));
                stack.push((*f, false));
            }
            ENode::Cond(c, t, e) => {
                stack.push((*e, false));
                stack.push((*t, false));
                stack.push((*c, false));
            }
        }
    }
    order
}

/// Register-window size of a routine, by node kind: every routine owns
/// its input register plus the temporaries its block needs (`while`
/// reuses the input register as the iterate accumulator).
fn window(node: &ENode) -> u32 {
    match node {
        ENode::Leaf(_) => 2,     // in, out
        ENode::Tuple(..) => 4,   // in, a, b, out
        ENode::Map(_) => 3,      // in, img, out
        ENode::Cond(..) => 3,    // in, cond, out
        ENode::Compose(..) => 3, // in, mid, out
        ENode::While(_) => 2,    // in (= cur = out), next
    }
}

/// Apply `f` to every static program-counter operand of `inst` — the
/// single source of truth for "which fields are jump targets", shared
/// by the peephole pass's target collection and its remap so the two
/// can never drift.
fn for_each_target(inst: &mut Inst, f: &mut impl FnMut(&mut u32)) {
    match inst {
        Inst::Call { entry, .. } | Inst::CallEnter { entry, .. } | Inst::MapIter { entry, .. } => {
            f(entry)
        }
        Inst::Branch { els, .. } => f(els),
        Inst::Jump { to } => f(to),
        Inst::WhileStep { back, .. } => f(back),
        Inst::CallLeaf { .. }
        | Inst::LeafPair { .. }
        | Inst::Enter { .. }
        | Inst::Leaf { .. }
        | Inst::FlattenDelta { .. }
        | Inst::Fused { .. }
        | Inst::Pair { .. }
        | Inst::WhileBegin { .. }
        | Inst::MapBegin { .. }
        | Inst::MapEnd { .. }
        | Inst::Ret { .. } => {}
    }
}

/// The peephole pass: fuse adjacent set-algebra opcodes. The one
/// adjacent pair the emitter produces is the compose-of-leaves spine
/// `call.leaf f; call.leaf g` threading a single intermediate register
/// (`Tuple` emits two `call.leaf`s too, but they share their *source*,
/// not a seam, and the seam test excludes them). The pair fuses into
/// one [`Inst::LeafPair`] unless the second instruction is a jump
/// target — fusing would delete an entry point — and every static pc
/// reference (including the program entry) is remapped over the
/// compacted vector. Behaviour is unchanged by construction: the
/// superinstruction replays both `call.leaf` bodies in order, writing
/// both registers.
fn peephole(insts: Vec<Inst>, entry: u32) -> (Vec<Inst>, u32) {
    let mut is_target = vec![false; insts.len() + 1];
    is_target[entry as usize] = true;
    for inst in &insts {
        let mut probe = *inst;
        for_each_target(&mut probe, &mut |t| is_target[*t as usize] = true);
    }
    let mut out: Vec<Inst> = Vec::with_capacity(insts.len());
    // old pc → new pc (a fused second element maps to its pair)
    let mut map: Vec<u32> = vec![0; insts.len()];
    let mut i = 0;
    while i < insts.len() {
        map[i] = out.len() as u32;
        if i + 1 < insts.len() && !is_target[i + 1] {
            if let (
                Inst::CallLeaf {
                    eid: e1,
                    src,
                    dst: mid,
                },
                Inst::CallLeaf {
                    eid: e2,
                    src: seam,
                    dst,
                },
            ) = (insts[i], insts[i + 1])
            {
                if seam == mid {
                    map[i + 1] = out.len() as u32;
                    out.push(Inst::LeafPair {
                        e1,
                        e2,
                        src,
                        mid,
                        dst,
                    });
                    i += 2;
                    continue;
                }
            }
        }
        out.push(insts[i]);
        i += 1;
    }
    for inst in &mut out {
        for_each_target(inst, &mut |t| *t = map[*t as usize]);
    }
    let entry = map[entry as usize];
    (out, entry)
}

/// Flatten the DAG under `root` into a [`Program`] specialised for the
/// given `memo`/`semi_naive` switches. `nodes` is the synced snapshot
/// the evaluation will run against; `caches` supplies the interned
/// derived-term handles and the recognition caches the compile-time
/// fused dispatch shares with the interpreter.
pub(crate) fn compile(
    root: EId,
    nodes: &[ENode],
    caches: &mut Caches,
    config: &EvalConfig,
) -> Program {
    let order = postorder(root, nodes);
    let mut routines: Vec<Option<Routine>> = Vec::new();
    routines.resize_with(nodes.len(), || None);

    // static allocation: register windows and map/while state slots
    let mut regs: u32 = 0;
    let mut map_slots: u32 = 0;
    let mut while_slots: u32 = 0;
    let mut slot_of: Vec<u32> = vec![0; nodes.len()];
    for &eid in &order {
        let node = &nodes[eid.index()];
        routines[eid.index()] = Some(Routine {
            entry: 0,
            base: regs,
        });
        regs += window(node);
        match node {
            ENode::Map(_) => {
                slot_of[eid.index()] = map_slots;
                map_slots += 1;
            }
            ENode::While(_) => {
                slot_of[eid.index()] = while_slots;
                while_slots += 1;
            }
            _ => {}
        }
    }

    let mut insts: Vec<Inst> = Vec::with_capacity(order.len() * 6);
    let base = |routines: &[Option<Routine>], eid: EId| -> Reg {
        routines[eid.index()].as_ref().expect("post-order").base
    };
    let semi_naive = config.semi_naive;
    let call =
        |insts: &[Inst], routines: &[Option<Routine>], callee: EId, src: Reg, dst: Reg| -> Inst {
            // a plain-leaf callee needs no frame: fuse probe + primitive
            // into one instruction (`μ` keeps its routine under semi-naive,
            // where it runs the delta rule instead of the leaf rule)
            if let ENode::Leaf(l) = &nodes[callee.index()] {
                if !(semi_naive && **l == Expr::Flatten) {
                    return Inst::CallLeaf {
                        eid: callee,
                        src,
                        dst,
                    };
                }
            }
            let r = routines[callee.index()].as_ref().expect("post-order");
            // children are emitted first, so the callee routine is already
            // in `insts`: when it opens with the generic prologue, fold the
            // prologue into the call and land past it
            if let Inst::Enter { head, .. } = insts[r.entry as usize] {
                return Inst::CallEnter {
                    eid: callee,
                    entry: r.entry + 1,
                    arg: r.base,
                    src,
                    dst,
                    head,
                };
            }
            Inst::Call {
                eid: callee,
                entry: r.entry,
                arg: r.base,
                src,
                dst,
            }
        };

    // children are emitted before parents, so every `call` the parent
    // emits already knows its callee's entry pc
    for &eid in &order {
        let entry = insts.len() as u32;
        let node = nodes[eid.index()].clone();
        let w = base(&routines, eid);
        if config.semi_naive {
            if let Some(kind) = fused_kind(eid, nodes, caches) {
                insts.push(Inst::Fused { kind, eid, src: w });
            }
        }
        match node {
            ENode::Leaf(l) => {
                if config.semi_naive && *l == Expr::Flatten {
                    insts.push(Inst::FlattenDelta {
                        eid,
                        src: w,
                        dst: w + 1,
                    });
                } else {
                    insts.push(Inst::Leaf {
                        eid,
                        src: w,
                        dst: w + 1,
                    });
                }
                insts.push(Inst::Ret {
                    src: w + 1,
                    observe: false,
                });
            }
            ENode::Compose(g, f) => {
                insts.push(Inst::Enter {
                    head: nodes[eid.index()].head_index() as u32,
                    src: w,
                });
                let cf = call(&insts, &routines, f, w, w + 1);
                insts.push(cf);
                let cg = call(&insts, &routines, g, w + 1, w + 2);
                insts.push(cg);
                insts.push(Inst::Ret {
                    src: w + 2,
                    observe: true,
                });
            }
            ENode::Tuple(f, g) => {
                insts.push(Inst::Enter {
                    head: nodes[eid.index()].head_index() as u32,
                    src: w,
                });
                let cf = call(&insts, &routines, f, w, w + 1);
                insts.push(cf);
                let cg = call(&insts, &routines, g, w, w + 2);
                insts.push(cg);
                insts.push(Inst::Pair {
                    a: w + 1,
                    b: w + 2,
                    dst: w + 3,
                });
                insts.push(Inst::Ret {
                    src: w + 3,
                    observe: true,
                });
            }
            ENode::Cond(c, t, e) => {
                insts.push(Inst::Enter {
                    head: nodes[eid.index()].head_index() as u32,
                    src: w,
                });
                let cc = call(&insts, &routines, c, w, w + 1);
                insts.push(cc);
                let branch_at = insts.len();
                insts.push(Inst::Branch {
                    cond: w + 1,
                    els: 0,
                });
                let ct = call(&insts, &routines, t, w, w + 2);
                insts.push(ct);
                let jump_at = insts.len();
                insts.push(Inst::Jump { to: 0 });
                let els_pc = insts.len() as u32;
                let ce = call(&insts, &routines, e, w, w + 2);
                insts.push(ce);
                let end_pc = insts.len() as u32;
                insts.push(Inst::Ret {
                    src: w + 2,
                    observe: true,
                });
                insts[branch_at] = Inst::Branch {
                    cond: w + 1,
                    els: els_pc,
                };
                insts[jump_at] = Inst::Jump { to: end_pc };
            }
            ENode::Map(f) => {
                let slot = slot_of[eid.index()];
                insts.push(Inst::Enter {
                    head: nodes[eid.index()].head_index() as u32,
                    src: w,
                });
                insts.push(Inst::MapBegin { slot, eid, src: w });
                let body = routines[f.index()].as_ref().expect("post-order");
                insts.push(Inst::MapIter {
                    slot,
                    eid: f,
                    entry: body.entry,
                    arg: body.base,
                    ret: w + 1,
                });
                insts.push(Inst::MapEnd {
                    slot,
                    eid,
                    dst: w + 2,
                });
                insts.push(Inst::Ret {
                    src: w + 2,
                    observe: true,
                });
            }
            ENode::While(f) => {
                let slot = slot_of[eid.index()];
                insts.push(Inst::Enter {
                    head: nodes[eid.index()].head_index() as u32,
                    src: w,
                });
                insts.push(Inst::WhileBegin { slot });
                let back_pc = insts.len() as u32;
                let cf = call(&insts, &routines, f, w, w + 1);
                insts.push(cf);
                insts.push(Inst::WhileStep {
                    slot,
                    cur: w,
                    next: w + 1,
                    back: back_pc,
                });
                insts.push(Inst::Ret {
                    src: w,
                    observe: true,
                });
            }
        }
        routines[eid.index()].as_mut().expect("allocated").entry = entry;
    }

    let root_routine = routines[root.index()].as_ref().expect("root compiled");
    let (insts, entry) = peephole(insts, root_routine.entry);
    Program {
        insts,
        root,
        entry,
        root_in: root_routine.base,
        regs,
        map_slots,
        while_slots,
        memo: config.memo,
        semi_naive: config.semi_naive,
    }
}

impl std::fmt::Display for FusedKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FusedKind::Cartprod => write!(f, "cartprod"),
            FusedKind::Unnest => write!(f, "unnest"),
            FusedKind::Select(pred) => write!(f, "select:e{}", pred.index()),
            FusedKind::ProjEq => write!(f, "projeq"),
            FusedKind::ProjPair => write!(f, "projpair"),
            FusedKind::Subset => write!(f, "subset"),
            FusedKind::Member => write!(f, "member"),
            FusedKind::Nest => write!(f, "nest"),
        }
    }
}

/// Render a program as assembly text: one header line (the machine
/// shape) followed by one instruction per line. The rendering is
/// **parseable** — [`parse`] reads it back into an equal [`Program`],
/// and a unit test round-trips every opcode.
pub fn disassemble(program: &Program) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(program.insts.len() * 40 + 80);
    let _ = writeln!(
        out,
        "prog root=e{} entry=@{} in=r{} regs={} map_slots={} while_slots={} memo={} semi_naive={}",
        program.root.index(),
        program.entry,
        program.root_in,
        program.regs,
        program.map_slots,
        program.while_slots,
        program.memo,
        program.semi_naive,
    );
    for (pc, inst) in program.insts.iter().enumerate() {
        let _ = write!(out, "{pc:4}: ");
        let _ = match *inst {
            Inst::Call {
                eid,
                entry,
                arg,
                src,
                dst,
            } => writeln!(
                out,
                "call e{} @{} arg=r{} src=r{} dst=r{}",
                eid.index(),
                entry,
                arg,
                src,
                dst
            ),
            Inst::CallLeaf { eid, src, dst } => {
                writeln!(out, "call.leaf e{} src=r{} dst=r{}", eid.index(), src, dst)
            }
            Inst::LeafPair {
                e1,
                e2,
                src,
                mid,
                dst,
            } => writeln!(
                out,
                "call.leaf2 e{} e{} src=r{} mid=r{} dst=r{}",
                e1.index(),
                e2.index(),
                src,
                mid,
                dst
            ),
            Inst::CallEnter {
                eid,
                entry,
                arg,
                src,
                dst,
                head,
            } => writeln!(
                out,
                "call.enter e{} @{} arg=r{} src=r{} dst=r{} head={}",
                eid.index(),
                entry,
                arg,
                src,
                dst,
                head
            ),
            Inst::Enter { head, src } => writeln!(out, "enter head={head} src=r{src}"),
            Inst::Leaf { eid, src, dst } => {
                writeln!(out, "leaf e{} src=r{} dst=r{}", eid.index(), src, dst)
            }
            Inst::FlattenDelta { eid, src, dst } => {
                writeln!(
                    out,
                    "flatten.delta e{} src=r{} dst=r{}",
                    eid.index(),
                    src,
                    dst
                )
            }
            Inst::Fused { kind, eid, src } => {
                writeln!(out, "fused {} e{} src=r{}", kind, eid.index(), src)
            }
            Inst::Pair { a, b, dst } => writeln!(out, "pair a=r{a} b=r{b} dst=r{dst}"),
            Inst::Branch { cond, els } => writeln!(out, "branch cond=r{cond} else=@{els}"),
            Inst::Jump { to } => writeln!(out, "jump @{to}"),
            Inst::WhileBegin { slot } => writeln!(out, "while.begin slot={slot}"),
            Inst::WhileStep {
                slot,
                cur,
                next,
                back,
            } => writeln!(
                out,
                "while.step slot={slot} cur=r{cur} next=r{next} back=@{back}"
            ),
            Inst::MapBegin { slot, eid, src } => {
                writeln!(out, "map.begin slot={slot} e{} src=r{}", eid.index(), src)
            }
            Inst::MapIter {
                slot,
                eid,
                entry,
                arg,
                ret,
            } => writeln!(
                out,
                "map.iter slot={slot} e{} @{} arg=r{} ret=r{}",
                eid.index(),
                entry,
                arg,
                ret
            ),
            Inst::MapEnd { slot, eid, dst } => {
                writeln!(out, "map.end slot={slot} e{} dst=r{}", eid.index(), dst)
            }
            Inst::Ret { src, observe } => writeln!(out, "ret src=r{src} observe={observe}"),
        };
    }
    out
}

/// Strip a decorated operand: `prefix` + number (`r7`, `@12`, `e3`,
/// `slot=4`, …).
fn field<'s>(tok: Option<&'s str>, prefix: &str) -> Result<&'s str, String> {
    let tok = tok.ok_or_else(|| format!("missing operand (expected `{prefix}…`)"))?;
    tok.strip_prefix(prefix)
        .ok_or_else(|| format!("expected `{prefix}…`, got `{tok}`"))
}

fn num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad number `{s}`"))
}

fn reg(tok: Option<&str>, prefix: &str) -> Result<Reg, String> {
    num(field(tok, prefix)?)
}

fn pc_ref(tok: Option<&str>, prefix: &str) -> Result<u32, String> {
    num(field(tok, prefix)?)
}

fn eid_ref(tok: Option<&str>, prefix: &str) -> Result<EId, String> {
    Ok(EId::from_index(num::<usize>(field(tok, prefix)?)?))
}

/// Parse one rendered instruction line (without the `pc:` prefix).
fn parse_inst(line: &str) -> Result<Inst, String> {
    let mut t = line.split_whitespace();
    let op = t.next().ok_or("empty instruction")?;
    let inst = match op {
        "call" => Inst::Call {
            eid: eid_ref(t.next(), "e")?,
            entry: pc_ref(t.next(), "@")?,
            arg: reg(t.next(), "arg=r")?,
            src: reg(t.next(), "src=r")?,
            dst: reg(t.next(), "dst=r")?,
        },
        "call.leaf" => Inst::CallLeaf {
            eid: eid_ref(t.next(), "e")?,
            src: reg(t.next(), "src=r")?,
            dst: reg(t.next(), "dst=r")?,
        },
        "call.leaf2" => Inst::LeafPair {
            e1: eid_ref(t.next(), "e")?,
            e2: eid_ref(t.next(), "e")?,
            src: reg(t.next(), "src=r")?,
            mid: reg(t.next(), "mid=r")?,
            dst: reg(t.next(), "dst=r")?,
        },
        "call.enter" => Inst::CallEnter {
            eid: eid_ref(t.next(), "e")?,
            entry: pc_ref(t.next(), "@")?,
            arg: reg(t.next(), "arg=r")?,
            src: reg(t.next(), "src=r")?,
            dst: reg(t.next(), "dst=r")?,
            head: num(field(t.next(), "head=")?)?,
        },
        "enter" => Inst::Enter {
            head: num(field(t.next(), "head=")?)?,
            src: reg(t.next(), "src=r")?,
        },
        "leaf" => Inst::Leaf {
            eid: eid_ref(t.next(), "e")?,
            src: reg(t.next(), "src=r")?,
            dst: reg(t.next(), "dst=r")?,
        },
        "flatten.delta" => Inst::FlattenDelta {
            eid: eid_ref(t.next(), "e")?,
            src: reg(t.next(), "src=r")?,
            dst: reg(t.next(), "dst=r")?,
        },
        "fused" => {
            let kind_tok = t.next().ok_or("missing fused kind")?;
            let kind = match kind_tok {
                "cartprod" => FusedKind::Cartprod,
                "unnest" => FusedKind::Unnest,
                "projeq" => FusedKind::ProjEq,
                "projpair" => FusedKind::ProjPair,
                "subset" => FusedKind::Subset,
                "member" => FusedKind::Member,
                "nest" => FusedKind::Nest,
                other => match other.strip_prefix("select:e") {
                    Some(p) => FusedKind::Select(EId::from_index(num::<usize>(p)?)),
                    None => return Err(format!("unknown fused kind `{other}`")),
                },
            };
            Inst::Fused {
                kind,
                eid: eid_ref(t.next(), "e")?,
                src: reg(t.next(), "src=r")?,
            }
        }
        "pair" => Inst::Pair {
            a: reg(t.next(), "a=r")?,
            b: reg(t.next(), "b=r")?,
            dst: reg(t.next(), "dst=r")?,
        },
        "branch" => Inst::Branch {
            cond: reg(t.next(), "cond=r")?,
            els: pc_ref(t.next(), "else=@")?,
        },
        "jump" => Inst::Jump {
            to: pc_ref(t.next(), "@")?,
        },
        "while.begin" => Inst::WhileBegin {
            slot: num(field(t.next(), "slot=")?)?,
        },
        "while.step" => Inst::WhileStep {
            slot: num(field(t.next(), "slot=")?)?,
            cur: reg(t.next(), "cur=r")?,
            next: reg(t.next(), "next=r")?,
            back: pc_ref(t.next(), "back=@")?,
        },
        "map.begin" => Inst::MapBegin {
            slot: num(field(t.next(), "slot=")?)?,
            eid: eid_ref(t.next(), "e")?,
            src: reg(t.next(), "src=r")?,
        },
        "map.iter" => Inst::MapIter {
            slot: num(field(t.next(), "slot=")?)?,
            eid: eid_ref(t.next(), "e")?,
            entry: pc_ref(t.next(), "@")?,
            arg: reg(t.next(), "arg=r")?,
            ret: reg(t.next(), "ret=r")?,
        },
        "map.end" => Inst::MapEnd {
            slot: num(field(t.next(), "slot=")?)?,
            eid: eid_ref(t.next(), "e")?,
            dst: reg(t.next(), "dst=r")?,
        },
        "ret" => Inst::Ret {
            src: reg(t.next(), "src=r")?,
            observe: num(field(t.next(), "observe=")?)?,
        },
        other => return Err(format!("unknown opcode `{other}`")),
    };
    if let Some(extra) = t.next() {
        return Err(format!("trailing operand `{extra}` after `{op}`"));
    }
    Ok(inst)
}

/// Parse [`disassemble`] output back into a [`Program`] — the inverse
/// direction of the `--disasm` debug path, so the text format is held
/// honest by a round-trip test.
pub fn parse(text: &str) -> Result<Program, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty program")?;
    let mut t = header.split_whitespace();
    match t.next() {
        Some("prog") => {}
        other => return Err(format!("bad header start `{other:?}`")),
    }
    let root = eid_ref(t.next(), "root=e")?;
    let entry = pc_ref(t.next(), "entry=@")?;
    let root_in = reg(t.next(), "in=r")?;
    let regs: u32 = num(field(t.next(), "regs=")?)?;
    let map_slots: u32 = num(field(t.next(), "map_slots=")?)?;
    let while_slots: u32 = num(field(t.next(), "while_slots=")?)?;
    let memo: bool = num(field(t.next(), "memo=")?)?;
    let semi_naive: bool = num(field(t.next(), "semi_naive=")?)?;
    let mut insts = Vec::new();
    for line in lines {
        let (pc, body) = line
            .split_once(':')
            .ok_or_else(|| format!("missing `pc:` prefix in `{line}`"))?;
        let pc: usize = num(pc.trim())?;
        if pc != insts.len() {
            return Err(format!("out-of-order pc {pc} (expected {})", insts.len()));
        }
        insts.push(parse_inst(body.trim())?);
    }
    Ok(Program {
        insts,
        root,
        entry,
        root_in,
        regs,
        map_slots,
        while_slots,
        memo,
        semi_naive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eager::MemoState;
    use nra_core::expr::intern::ExprArena;
    use nra_core::{builder, derived, queries, Type};

    fn compile_expr(expr: &Expr, config: &EvalConfig) -> Program {
        let mut ea = ExprArena::default();
        let root = ea.intern(expr);
        let mut state = MemoState::new(&mut ea);
        state.begin_query(&mut ea, false);
        let MemoState { nodes, caches, .. } = &mut state;
        compile(root, nodes, caches, config)
    }

    /// Every opcode the compiler can emit prints and re-parses — the
    /// `--disasm` round-trip contract. The expression zoo is chosen so
    /// the union of programs covers the full instruction set,
    /// including every fused superinstruction kind.
    #[test]
    fn disassembly_round_trips_every_opcode() {
        let zoo: Vec<Expr> = vec![
            queries::tc_while(), // while, compose, tuple, fused cartprod/projeq/select
            queries::tc_paths(), // powerset route: leaves, map, cond
            derived::unnest(),   // fused unnest
            derived::member(&Type::Nat), // fused member
            derived::subset(&Type::Nat), // fused subset
            derived::nest(&Type::Nat, &Type::Nat), // fused nest
            builder::cond(
                builder::is_empty(),
                builder::id(),
                builder::compose(builder::flatten(), builder::map(builder::sng())),
            ), // cond diamond + flatten.delta
            builder::compose(builder::fst(), builder::snd()), // peephole leaf pair
        ];
        let mut seen = std::collections::HashSet::new();
        for config in [EvalConfig::optimised(), EvalConfig::default()] {
            for expr in &zoo {
                let program = compile_expr(expr, &config);
                let text = disassemble(&program);
                let back = parse(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
                assert_eq!(back, program, "round trip drifted\n{text}");
                for inst in &program.insts {
                    seen.insert(std::mem::discriminant(inst));
                }
            }
        }
        // all 17 opcodes exercised
        assert_eq!(seen.len(), 17, "instruction zoo lost coverage");
    }

    /// A parse error names the offending token instead of panicking.
    #[test]
    fn parse_rejects_malformed_text() {
        assert!(parse("").is_err());
        assert!(parse("prog root=e0").is_err());
        let program = compile_expr(&queries::tc_while(), &EvalConfig::optimised());
        let text = disassemble(&program);
        let broken = text.replace("while.step", "while.stomp");
        assert!(parse(&broken).is_err());
    }

    /// Register windows never overlap: each routine's window is
    /// private, so the static allocation is sound.
    #[test]
    fn register_windows_are_disjoint() {
        let program = compile_expr(&queries::tc_while(), &EvalConfig::optimised());
        // every register written by the program is inside the file
        for inst in &program.insts {
            let touched: Vec<Reg> = match *inst {
                Inst::Call { arg, src, dst, .. } | Inst::CallEnter { arg, src, dst, .. } => {
                    vec![arg, src, dst]
                }
                Inst::Enter { src, .. } | Inst::Ret { src, .. } | Inst::Fused { src, .. } => {
                    vec![src]
                }
                Inst::Leaf { src, dst, .. }
                | Inst::CallLeaf { src, dst, .. }
                | Inst::FlattenDelta { src, dst, .. } => {
                    vec![src, dst]
                }
                Inst::LeafPair { src, mid, dst, .. } => vec![src, mid, dst],
                Inst::MapBegin { src, .. } => vec![src],
                Inst::Pair { a, b, dst } => vec![a, b, dst],
                Inst::Branch { cond, .. } => vec![cond],
                Inst::WhileStep { cur, next, .. } => vec![cur, next],
                Inst::MapIter { arg, ret, .. } => vec![arg, ret],
                Inst::MapEnd { dst, .. } => vec![dst],
                Inst::Jump { .. } | Inst::WhileBegin { .. } => vec![],
            };
            for r in touched {
                assert!(
                    r < program.regs,
                    "register r{r} outside file {}",
                    program.regs
                );
            }
        }
    }

    /// The peephole pass fuses exactly the compose-of-leaves spine —
    /// a `Tuple` of two leaves shares a *source*, not a seam, and must
    /// stay unfused — every remapped pc stays in range, and the fused
    /// program computes the same answer with the same stats as the
    /// interpreter.
    #[test]
    fn peephole_fuses_the_compose_of_leaves_spine() {
        use crate::EvalSession;
        use nra_core::Value;

        let q = builder::compose(builder::fst(), builder::snd());
        for config in [
            EvalConfig::default(),
            EvalConfig::memoised(),
            EvalConfig::semi_naive(),
            EvalConfig::optimised(),
        ] {
            let program = compile_expr(&q, &config);
            let pairs = program
                .insts
                .iter()
                .filter(|i| matches!(i, Inst::LeafPair { .. }))
                .count();
            let lone = program
                .insts
                .iter()
                .filter(|i| matches!(i, Inst::CallLeaf { .. }))
                .count();
            assert_eq!(pairs, 1, "one fused spine step\n{}", disassemble(&program));
            assert_eq!(lone, 0, "both call.leafs consumed by the fusion");
            // every static pc survived the remap in range
            let len = program.insts.len() as u32;
            assert!(program.entry < len);
            for inst in &program.insts {
                let mut probe = *inst;
                for_each_target(&mut probe, &mut |t| assert!(*t < len, "dangling pc @{t}"));
            }
        }

        // the tuple shape is left alone: its two call.leafs read the
        // same input register instead of threading a seam
        let t = builder::tuple(builder::fst(), builder::snd());
        let program = compile_expr(&t, &EvalConfig::optimised());
        assert!(
            !program
                .insts
                .iter()
                .any(|i| matches!(i, Inst::LeafPair { .. })),
            "tuple of leaves must not fuse\n{}",
            disassemble(&program)
        );

        // fused execution is bit-for-bit the interpreted one
        let input = Value::pair(Value::nat(1), Value::pair(Value::nat(2), Value::nat(3)));
        let walked = EvalSession::new(EvalConfig::optimised()).eval(&q, &input);
        let fused = EvalSession::new(EvalConfig::compiled()).eval(&q, &input);
        assert_eq!(walked.result.as_ref().unwrap(), &Value::nat(2));
        assert_eq!(walked.result, fused.result);
        assert_eq!(walked.stats, fused.stats);
    }
}
