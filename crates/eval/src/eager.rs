//! The eager natural-semantics evaluator of §3.
//!
//! Evaluation `f(C) ⇓ C'` is implemented by structural recursion over the
//! expression, exactly mirroring the paper's rule set: each recursive call
//! is one node of the derivation tree, and at each node the input and
//! output objects are *observed* — their sizes feed the §3 complexity
//! measure ([`crate::stats::EvalStats`]) and the space budget
//! ([`crate::error::EvalConfig`]).
//!
//! Since the §3 measure observes `size(C)` at **every** rule application,
//! the default evaluation path runs on the hash-consed arena of
//! [`nra_core::value::intern`]: objects are [`VId`] handles whose size is
//! cached metadata, so each observation is `O(1)` instead of a full
//! traversal, `clone` is a handle copy, and the `while` fixpoint test is a
//! `u32` comparison. [`evaluate`] interns its input, runs interned, and
//! resolves the result — the [`Value`] API is a conversion layer.
//! [`evaluate_vid`] exposes the interned path end-to-end for callers that
//! already hold handles; [`evaluate_tree`] keeps the original
//! tree-walking implementation as a differential baseline (same rules,
//! same statistics, `O(size)` bookkeeping).
//!
//! `powerset` is special-cased: its output size is computed
//! **combinatorially before materialisation** (`1 + 2^k + 2^{k-1}·Σᵢ
//! size(eᵢ)` for a k-element input, saturating), so a budgeted evaluation
//! can report the exact space requirement of runs that would never fit in
//! memory.
//!
//! Two opt-in cost-model switches run on the interned-expression walker
//! (`eval_eid`), never changing a result:
//!
//! * [`EvalConfig::memo`] — the BDD-style apply cache `(EId, VId) →
//!   VId` (`MemoCache`), with each slot carrying the subtree's
//!   as-if-uncached cost so hits charge the node budget exactly;
//! * [`EvalConfig::semi_naive`] — delta-driven iteration: `while`
//!   threads `(total, delta)`, `map`/`μ` evaluate frontier-only against
//!   the `DeltaEntry` cache, and the hash-consed Prop 2.1 shapes —
//!   cartesian product (`eval_cartprod_fused`), selection
//!   (`eval_select_fused`), projection equality and tupling
//!   (`eval_projeq_fused`, `eval_projpair_fused`) — run fused delta
//!   rules. The §3 counters only ever shrink (every skipped object
//!   already occurred, and was observed, earlier in the evaluation);
//!   the default mode remains the exact §3 measure.

use crate::error::{EvalConfig, EvalError};
use crate::shapes::ShapeCaches;
use crate::stats::EvalStats;
use nra_core::expr::intern::{self as expr_intern, EId, ENode, ExprArena};
use nra_core::expr::Expr;
use nra_core::value::intern::{self, FxBuildHasher, VId, ValueArena};
use nra_core::value::Value;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// The outcome of an evaluation: result (or budget error) plus statistics.
/// The statistics are meaningful in both cases — on a budget error they
/// describe the partial derivation tree built so far, with
/// `max_object_size` already raised to the size that broke the budget.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The value `C'` with `f(C) ⇓ C'`, or the budget/divergence error.
    pub result: Result<Value, EvalError>,
    /// §3 statistics of the (possibly partial) derivation tree.
    pub stats: EvalStats,
}

impl Evaluation {
    /// The paper's complexity of this evaluation.
    pub fn complexity(&self) -> u64 {
        self.stats.max_object_size
    }
}

/// The outcome of an evaluation on the interned path: a [`VId`] handle
/// into the thread-local arena (or a budget error) plus §3 statistics.
#[derive(Debug, Clone)]
pub struct VidEvaluation {
    /// The handle of the result `C'` with `f(C) ⇓ C'`, or the error.
    pub result: Result<VId, EvalError>,
    /// §3 statistics of the (possibly partial) derivation tree.
    pub stats: EvalStats,
}

impl VidEvaluation {
    /// The paper's complexity of this evaluation.
    pub fn complexity(&self) -> u64 {
        self.stats.max_object_size
    }
}

pub(crate) struct Ctx<'a> {
    pub(crate) config: &'a EvalConfig,
    pub(crate) stats: EvalStats,
    /// Derivation nodes charged against [`EvalConfig::max_nodes`]: the
    /// *as-if-uncached* count. Equal to `stats.nodes` in the default
    /// mode; an apply-cache hit or a delta-skipped frontier adds the
    /// recorded cost of the skipped subtree here (and only here), so
    /// budget exhaustion is strategy-independent — a budget that cuts
    /// the naive derivation cuts the cached one at the same point in
    /// the judgment sequence.
    pub(crate) charged_nodes: u64,
    /// Per-rule application counts, indexed by [`Expr::head_index`] —
    /// a flat array on the hot path (one increment per derivation
    /// node); folded into the [`EvalStats::rule_counts`] map once, by
    /// [`Ctx::finish`].
    rules: [u64; Expr::HEAD_NAMES.len()],
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(config: &'a EvalConfig) -> Self {
        Ctx {
            config,
            stats: EvalStats::default(),
            charged_nodes: 0,
            rules: [0; Expr::HEAD_NAMES.len()],
        }
    }

    /// Fold the flat per-rule counters into the statistics map and
    /// return the completed [`EvalStats`].
    pub(crate) fn finish(mut self) -> EvalStats {
        for (i, &count) in self.rules.iter().enumerate() {
            if count > 0 {
                self.stats.rule_counts.insert(Expr::HEAD_NAMES[i], count);
            }
        }
        self.stats
    }

    /// Charge the recorded cost of a skipped (cached or delta-folded)
    /// sub-derivation against the node budget without touching the §3
    /// counters.
    pub(crate) fn charge(&mut self, cost: u64) -> Result<(), EvalError> {
        self.charged_nodes = self.charged_nodes.saturating_add(cost);
        match self.config.max_nodes {
            Some(budget) if self.charged_nodes > budget => {
                Err(EvalError::NodeBudgetExceeded { budget })
            }
            _ => Ok(()),
        }
    }

    /// Observe a tree-represented object — `O(size)` traversal.
    pub(crate) fn observe(&mut self, value: &Value) -> Result<(), EvalError> {
        let size = value.size();
        self.stats.observe_object(size, value.cardinality());
        self.check_size(size)
    }

    /// Observe an interned object against the supplied arena — the size
    /// and cardinality are cached arena metadata, so the observation is
    /// `O(1)` and touches no thread-local state.
    pub(crate) fn observe_vid(&mut self, a: &ValueArena, value: VId) -> Result<(), EvalError> {
        let size = a.size(value);
        self.stats.observe_object(size, a.cardinality(value));
        self.check_size(size)
    }

    pub(crate) fn check_size(&mut self, size: u64) -> Result<(), EvalError> {
        self.stats.max_object_size = self.stats.max_object_size.max(size);
        match self.config.max_object_size {
            Some(budget) if size > budget => Err(EvalError::SpaceBudgetExceeded {
                required: size,
                budget,
            }),
            _ => Ok(()),
        }
    }

    pub(crate) fn node(&mut self, rule: usize) -> Result<(), EvalError> {
        self.stats.nodes += 1;
        self.rules[rule] += 1;
        self.charge(1)
    }
}

pub(crate) fn stuck(rule: &'static str, detail: impl Into<String>) -> EvalError {
    EvalError::Stuck {
        rule,
        detail: detail.into(),
    }
}

/// Evaluate `expr` on `input` under `config`, returning both the result and
/// the §3 statistics. Runs on the interned (hash-consed) path; the input
/// is interned once and the result resolved once at the boundary.
///
/// Interned intermediates are retained by the calling thread's arena
/// *across* calls — repeated evaluations over shared data get cache hits,
/// at the price of monotone memory growth. Long-running processes that
/// evaluate unboundedly many distinct inputs should call
/// [`nra_core::value::intern::reset_thread_arena`] at quiescent points
/// (no live `VId`s); see the arena docs for the trade-off.
///
/// ```
/// use nra_core::{builder, Value};
/// use nra_eval::{evaluate, EvalConfig};
///
/// // powerset(r₃) has 2³ subsets; the complexity measure sees them all
/// let ev = evaluate(&builder::powerset(), &Value::chain(3), &EvalConfig::default());
/// assert_eq!(ev.result.unwrap().cardinality(), Some(8));
/// assert_eq!(ev.stats.max_object_size, 45);
/// ```
pub fn evaluate(expr: &Expr, input: &Value, config: &EvalConfig) -> Evaluation {
    let iv = intern::intern(input);
    let ev = evaluate_vid(expr, iv, config);
    Evaluation {
        result: ev.result.map(intern::resolve),
        stats: ev.stats,
    }
}

/// Evaluate entirely on interned handles: the input is a [`VId`] into the
/// calling thread's arena and so is the result — no tree conversion at
/// either end. This is the hot entry point used by the benchmarks, the
/// graph/circuit bridges and the symbolic Lemma checks.
///
/// ```
/// use nra_core::{queries, value::intern};
/// use nra_eval::{evaluate_vid, EvalConfig};
///
/// let input = intern::chain(4);
/// let ev = evaluate_vid(&queries::tc_while(), input, &EvalConfig::default());
/// let out = ev.result.unwrap();
/// assert_eq!(out, intern::chain_tc(4)); // O(1) equality on handles
/// assert_eq!(intern::to_edges(out).unwrap().len(), 10);
/// ```
pub fn evaluate_vid(expr: &Expr, input: VId, config: &EvalConfig) -> VidEvaluation {
    let mut ctx = Ctx::new(config);
    // cumulative per-arena counters: the delta across the call is what
    // this evaluation spent on the word-parallel dense path
    let (dense_ops0, dense_promotions0) = intern::with_arena(|va| va.dense_counters());
    let result = if config.memo || config.semi_naive || config.compiled {
        // the cached routes walk the interned expression, so the
        // (EId, VId) pair is available as the apply-cache key — and the
        // EId as the delta-cache key — at every recursion step. The
        // facade borrows both thread-local arenas once, for the whole
        // evaluation: the walker itself never touches a thread-local.
        expr_intern::with_arena(|ea| {
            let eid = ea.intern(expr);
            let mut state = MemoState::acquire_pooled(ea);
            let result = if config.compiled {
                // the pooled state keeps its program cache across
                // facade calls (handles are generation-stable), so
                // repeat evaluations skip straight to the VM
                let program = state.program(eid, config);
                intern::with_arena(|va| {
                    let MemoState { nodes, caches, .. } = &mut state;
                    crate::compile::vm::run(&program, input, &mut ctx, nodes, caches, va)
                })
            } else {
                intern::with_arena(|va| {
                    let MemoState { nodes, caches, .. } = &mut state;
                    eval_eid(eid, input, &mut ctx, nodes, caches, va)
                })
            };
            state.release_pooled();
            result
        })
    } else {
        intern::with_arena(|va| eval_vid(expr, input, &mut ctx, va))
    };
    let (dense_ops1, dense_promotions1) = intern::with_arena(|va| va.dense_counters());
    let mut stats = ctx.finish();
    stats.dense_ops = dense_ops1 - dense_ops0;
    stats.dense_promotions = dense_promotions1 - dense_promotions0;
    VidEvaluation { result, stats }
}

/// Evaluate with the default (unbudgeted) configuration, discarding stats.
pub fn eval(expr: &Expr, input: &Value) -> Result<Value, EvalError> {
    evaluate(expr, input, &EvalConfig::default()).result
}

/// Evaluate `expr` on `input` with the original tree-walking
/// implementation: for evaluations that complete, results and statistics
/// are identical to [`evaluate`] — but every observation traverses the
/// object (`O(size)`) and every `clone` is deep. Kept as the differential
/// baseline the interned path is tested and benchmarked against.
///
/// On *budget errors* the two paths may report different partial
/// statistics and `required` sizes: `map` visits set elements in `Value`
/// order here but in handle order on the interned path, so a budget can
/// trip at a different element.
pub fn evaluate_tree(expr: &Expr, input: &Value, config: &EvalConfig) -> Evaluation {
    let mut ctx = Ctx::new(config);
    let result = eval_in(expr, input, &mut ctx);
    Evaluation {
        result,
        stats: ctx.finish(),
    }
}

/// The interned §3 rule set: one call = one derivation node. Shared with
/// [`crate::trace`] (which materialises the tree) and [`crate::lazy`]
/// (which re-uses it for per-subset sub-evaluations). The arena is an
/// explicit parameter — a session threads its own, the facade threads the
/// thread-local one.
pub(crate) fn eval_vid(
    expr: &Expr,
    input: VId,
    ctx: &mut Ctx,
    va: &mut ValueArena,
) -> Result<VId, EvalError> {
    ctx.node(expr.head_index())?;
    if !matches!(
        expr,
        Expr::Tuple(..) | Expr::Map(_) | Expr::Cond(..) | Expr::Compose(..) | Expr::While(_)
    ) {
        return eval_leaf_rule(expr, input, ctx, va);
    }
    ctx.observe_vid(va, input)?;
    let output = match expr {
        Expr::Tuple(f, g) => {
            let a = eval_vid(f, input, ctx, va)?;
            let b = eval_vid(g, input, ctx, va)?;
            va.pair(a, b)
        }
        Expr::Map(f) => {
            let items = va
                .as_set(input)
                .ok_or_else(|| stuck("map", "input is not a set"))?;
            let mut out = Vec::with_capacity(items.len());
            for &item in items.iter() {
                out.push(eval_vid(f, item, ctx, va)?);
            }
            va.set_from_vec(out)
        }
        Expr::Cond(c, then, els) => {
            let cv = eval_vid(c, input, ctx, va)?;
            match va.as_bool(cv) {
                Some(true) => eval_vid(then, input, ctx, va)?,
                Some(false) => eval_vid(els, input, ctx, va)?,
                None => return Err(stuck("if", "condition is not boolean")),
            }
        }
        Expr::Compose(g, f) => {
            let mid = eval_vid(f, input, ctx, va)?;
            eval_vid(g, mid, ctx, va)?
        }
        Expr::While(f) => {
            let mut current = input;
            let mut iterations: u64 = 0;
            loop {
                let next = eval_vid(f, current, ctx, va)?;
                iterations += 1;
                ctx.stats.while_iterations += 1;
                // hash-consing makes the fixpoint test O(1)
                if next == current {
                    break current;
                }
                if iterations >= ctx.config.max_while_iters {
                    return Err(EvalError::WhileDiverged { iterations });
                }
                current = next;
            }
        }
        leaf => unreachable!("leaf {} handled above", leaf.head_name()),
    };
    ctx.observe_vid(va, output)?;
    Ok(output)
}

/// One full leaf rule — both §3 observations plus the primitive itself —
/// shared by [`eval_vid`] and the memoised [`eval_eid`]. The caller has
/// already counted the derivation node.
pub(crate) fn eval_leaf_rule(
    expr: &Expr,
    input: VId,
    ctx: &mut Ctx,
    va: &mut ValueArena,
) -> Result<VId, EvalError> {
    if matches!(expr, Expr::Powerset | Expr::PowersetM(_) | Expr::Const(..)) {
        ctx.observe_vid(va, input)?;
        let output = apply_leaf_vid(expr, input, ctx, va)?;
        ctx.observe_vid(va, output)?;
        Ok(output)
    } else {
        ctx.observe_vid(va, input)?;
        let output = apply_simple_leaf(expr, input, va)?;
        ctx.observe_vid(va, output)?;
        Ok(output)
    }
}

/// Initial size of the apply cache, as a power of two.
const MEMO_INITIAL_BITS: u32 = 14;
/// Ceiling on the apply cache size (2²⁰ slots ≈ 32 MiB): past this the
/// cache stays lossy instead of growing — the BDD trade-off that keeps
/// memory bounded on powerset-sized runs.
const MEMO_MAX_BITS: u32 = 20;

/// One apply-cache slot: packed `(EId, VId)` key, the epoch that wrote
/// it, the query stamp within that epoch (how warm hits are told apart
/// from same-query hits), the cached result, and the recorded
/// *as-if-uncached* cost of the cached subtree (in derivation nodes) —
/// what a hit charges against the node budget so budgeted runs stay
/// strategy-independent.
type MemoSlot = (u64, u32, u32, VId, u64);

thread_local! {
    /// The pooled [`MemoState`], so consecutive memoised evaluations
    /// through the free-function facade reuse its storage — see
    /// [`MemoState::acquire_pooled`]. Sessions own their state instead.
    static MEMO_POOL: std::cell::Cell<Option<MemoState>> = const { std::cell::Cell::new(None) };
}

/// Key sentinel used for never-written slots — unreachable as a packed
/// key while either arena holds fewer than 2³² nodes (they panic before
/// that).
const MEMO_EMPTY_KEY: u64 = u64::MAX;

/// Slot index of the apply tables: the expression id is
/// Fibonacci-scrambled, the value id added *linearly*. Two judgments on
/// the same expression can then only collide when their value ids
/// differ by a multiple of the table length, and a `map` loop — which
/// probes the same `EId` over ascending element ids — walks consecutive
/// slots, so the hardware prefetcher hides the table's memory latency.
#[inline]
fn memo_slot(key: u64, mask: u64) -> usize {
    let eid = key >> 32;
    (eid.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(key) & mask) as usize
}

/// Fixed size of the shared apply table, as a power of two (2¹⁶ slots ≈
/// 1.5 MiB). Unlike the local table it never grows: growth would move
/// slots under concurrent readers, and the table is lossy by design —
/// a displaced judgment is simply re-derived.
const SHARED_MEMO_BITS: u32 = 16;
/// Lock stripes of the shared apply table. 2¹⁶ slots / 128 stripes =
/// 512 consecutive slots per stripe — consecutive probes of a `map`
/// loop stay on one stripe, so striping costs no locality.
const SHARED_MEMO_STRIPES: usize = 128;
/// Slots per stripe.
const SHARED_MEMO_STRIPE_SLOTS: usize = (1usize << SHARED_MEMO_BITS) / SHARED_MEMO_STRIPES;

/// One shared apply-table slot: packed key, the query stamp that wrote
/// it, the result, and the recorded as-if-uncached cost. No epoch — a
/// shared table is dropped wholesale (the Arc replaced) instead of
/// epoch-invalidated, and it lives exactly as long as the shared store
/// its handles point into.
type SharedSlot = (u64, u32, VId, u64);

/// The **shared** apply table all worker sessions of a batch probe and
/// write together: one worker's derivation becomes every worker's warm
/// hit. Lock-striped; a probe or store locks exactly one stripe.
/// Query stamps are drawn from one atomic counter, so every
/// `begin_query` anywhere gets a distinct stamp and cross-query *and*
/// cross-worker hits both classify as warm.
pub(crate) struct SharedMemoTable {
    stripes: Box<[Mutex<Box<[SharedSlot]>>]>,
    next_query: AtomicU32,
}

impl SharedMemoTable {
    fn new() -> Self {
        let stripes = (0..SHARED_MEMO_STRIPES)
            .map(|_| {
                Mutex::new(
                    vec![(MEMO_EMPTY_KEY, 0, VId::from_index(0), 0); SHARED_MEMO_STRIPE_SLOTS]
                        .into_boxed_slice(),
                )
            })
            .collect();
        SharedMemoTable {
            stripes,
            next_query: AtomicU32::new(0),
        }
    }

    /// A fresh query stamp, distinct from every stamp handed out before
    /// (modulo `u32` wrap, which only ever misclassifies warmness, never
    /// correctness).
    fn fresh_query(&self) -> u32 {
        self.next_query.fetch_add(1, Ordering::Relaxed)
    }

    /// The stripe holding `slot`, and the slot's index within it.
    #[inline]
    fn stripe(&self, slot: usize) -> (&Mutex<Box<[SharedSlot]>>, usize) {
        (
            &self.stripes[slot / SHARED_MEMO_STRIPE_SLOTS],
            slot % SHARED_MEMO_STRIPE_SLOTS,
        )
    }
}

/// The single-owner apply cache — the classic BDD design: a
/// direct-mapped, lossy table of epoch-stamped `(key, result)` slots
/// rather than an exact map. A probe is one array read, an insert one
/// array write, and a colliding entry is simply overwritten (the
/// judgment is then re-derived on the next encounter, which changes no
/// result, only a hit counter). The table quadruples while its load
/// would exceed ~¼, up to a fixed ceiling, and its storage is handed
/// back to a thread-local pool between evaluations.
pub(crate) struct LocalMemo {
    /// Direct-mapped slots; a slot is live iff its epoch matches.
    slots: Vec<MemoSlot>,
    /// Index mask (`slots.len() − 1`; the length is a power of two).
    mask: u64,
    /// Live-slot count, driving growth.
    stored: usize,
    /// The current epoch stamp. The facade opens a fresh epoch per
    /// evaluation (cold starts); a session keeps the epoch and bumps
    /// only the query stamp, which is what makes its entries survive
    /// across `session.eval(…)` calls.
    epoch: u32,
    /// The current query stamp within the epoch. A hit on a slot whose
    /// query stamp differs is a **warm hit**: the judgment was derived
    /// by an earlier query of the same session.
    query: u32,
}

impl LocalMemo {
    fn blank_slots(len: usize) -> Vec<MemoSlot> {
        // handle 0 as filler payload; never returned because the
        // sentinel key can't match
        vec![(MEMO_EMPTY_KEY, 0, 0, VId::from_index(0), 0); len]
    }

    fn new() -> Self {
        let len = 1usize << MEMO_INITIAL_BITS;
        LocalMemo {
            slots: Self::blank_slots(len),
            mask: (len - 1) as u64,
            stored: 0,
            epoch: 0,
            query: 0,
        }
    }

    /// Probe for a cached judgment: the result handle, the recorded
    /// as-if-uncached cost of its subtree, and whether the entry is a
    /// *warm* one (written by an earlier query of the same session).
    fn probe(&self, key: u64) -> Option<(VId, u64, bool)> {
        let (k, e, q, v, cost) = self.slots[memo_slot(key, self.mask)];
        (k == key && e == self.epoch).then_some((v, cost, q != self.query))
    }

    fn store(&mut self, key: u64, out: VId, cost: u64) {
        if self.stored * 4 >= self.slots.len() && self.slots.len() < (1 << MEMO_MAX_BITS) {
            self.grow();
        }
        let epoch = self.epoch;
        let slot = memo_slot(key, self.mask);
        if self.slots[slot].1 != epoch {
            self.stored += 1; // filling an empty or stale slot
        }
        self.slots[slot] = (key, epoch, self.query, out, cost);
    }

    /// Quadruple the table, re-inserting this epoch's live entries
    /// (their query stamps survive, so warmness is preserved).
    fn grow(&mut self) {
        let new_len = self.slots.len() * 4;
        let old = std::mem::replace(&mut self.slots, Self::blank_slots(new_len));
        self.mask = (new_len - 1) as u64;
        self.stored = 0;
        for (k, e, q, v, cost) in old {
            if k != MEMO_EMPTY_KEY && e == self.epoch {
                let slot = memo_slot(k, self.mask);
                if self.slots[slot].1 != self.epoch {
                    self.stored += 1;
                }
                self.slots[slot] = (k, self.epoch, q, v, cost);
            }
        }
    }
}

/// A session's view of a [`SharedMemoTable`]: the Arc plus this view's
/// current query stamp (stamps live per view, entries per table).
pub(crate) struct SharedMemo {
    table: Arc<SharedMemoTable>,
    query: u32,
}

/// The apply cache of the memoised walker, in one of two modes:
///
/// * [`MemoCache::Local`] — the single-owner direct-mapped table every
///   session starts with (and the facade pools thread-locally);
/// * [`MemoCache::Shared`] — a view of one lock-striped
///   [`SharedMemoTable`] several sessions (the parent and its batch
///   workers) probe and write together, so a judgment derived by any
///   of them is a warm `O(1)` hit for all of them.
///
/// Every rule is cached, leaves included: a leaf hit skips not just
/// the (cheap) primitive but the per-node §3 bookkeeping — rule
/// counting and the two size observations — which costs more than the
/// probe. The expression-node snapshot lives *outside* this type (see
/// [`eval_eid`]) so the walker can read structure through a shared
/// borrow while mutating the cache.
pub(crate) enum MemoCache {
    /// Single-owner table.
    Local(LocalMemo),
    /// View of a table shared between sessions.
    Shared(SharedMemo),
}

impl MemoCache {
    fn new_local() -> Self {
        MemoCache::Local(LocalMemo::new())
    }

    /// A view of an existing shared table, opening with a fresh query
    /// stamp — how batch workers join the parent's cache.
    fn with_shared_table(table: Arc<SharedMemoTable>) -> Self {
        let query = table.fresh_query();
        MemoCache::Shared(SharedMemo { table, query })
    }

    /// Switch to a **fresh, empty** shared table (idempotent). Local
    /// entries are deliberately not migrated — the shared cache starts
    /// cold and warms on first use; migrating would mean re-hashing the
    /// whole local table under no contention benefit.
    fn make_shared(&mut self) {
        if matches!(self, MemoCache::Shared(_)) {
            return;
        }
        *self = MemoCache::with_shared_table(Arc::new(SharedMemoTable::new()));
    }

    /// The shared table behind this cache, if any — what a parent
    /// session hands to its batch workers.
    fn shared_table(&self) -> Option<Arc<SharedMemoTable>> {
        match self {
            MemoCache::Shared(m) => Some(Arc::clone(&m.table)),
            MemoCache::Local(_) => None,
        }
    }

    pub(crate) fn key(eid: EId, input: VId) -> u64 {
        ((eid.index() as u64) << 32) | input.index() as u64
    }

    /// Probe for a cached judgment — see [`LocalMemo::probe`]. On the
    /// shared table this locks exactly one stripe; an entry written by
    /// any *other* query stamp (other query of this session, or any
    /// query of another session on the same table) classifies as warm.
    pub(crate) fn probe(&self, key: u64) -> Option<(VId, u64, bool)> {
        match self {
            MemoCache::Local(m) => m.probe(key),
            MemoCache::Shared(m) => {
                let slot = memo_slot(key, (1u64 << SHARED_MEMO_BITS) - 1);
                let (stripe, within) = m.table.stripe(slot);
                let guard = stripe.lock().unwrap_or_else(PoisonError::into_inner);
                let (k, q, v, cost) = guard[within];
                (k == key).then_some((v, cost, q != m.query))
            }
        }
    }

    pub(crate) fn store(&mut self, key: u64, out: VId, cost: u64) {
        match self {
            MemoCache::Local(m) => m.store(key, out, cost),
            MemoCache::Shared(m) => {
                let slot = memo_slot(key, (1u64 << SHARED_MEMO_BITS) - 1);
                let (stripe, within) = m.table.stripe(slot);
                let mut guard = stripe.lock().unwrap_or_else(PoisonError::into_inner);
                guard[within] = (key, m.query, out, cost);
            }
        }
    }

    /// Open the next query against this cache; returns whether it is
    /// actually warm (entries of earlier queries remain probeable).
    /// `generation_changed` forces a cold start — cached handles went
    /// stale with the arena; a shared cache detaches onto a fresh table
    /// for the same reason (other views keep the old one).
    fn begin_query(&mut self, warm: bool, generation_changed: bool) -> bool {
        match self {
            MemoCache::Local(m) => {
                let warm = warm && !generation_changed && m.query < u32::MAX;
                if warm {
                    m.query += 1;
                } else {
                    m.epoch = m.epoch.wrapping_add(1);
                    if m.epoch == 0 {
                        // the stamp wrapped: stale slots could alias the
                        // new epoch (blank slots are stamped 0, so
                        // restart from 1)
                        m.slots = LocalMemo::blank_slots(m.slots.len());
                        m.epoch = 1;
                    }
                    m.stored = 0;
                    m.query = 0;
                }
                warm
            }
            MemoCache::Shared(m) => {
                if generation_changed {
                    m.table = Arc::new(SharedMemoTable::new());
                    m.query = m.table.fresh_query();
                    return false;
                }
                m.query = m.table.fresh_query();
                // a shared table cannot be epoch-invalidated per view;
                // a cold (warm = false) open detaches this view instead
                if !warm {
                    m.table = Arc::new(SharedMemoTable::new());
                    m.query = m.table.fresh_query();
                }
                warm
            }
        }
    }

    /// Drop everything this cache retains; the local table shrinks back
    /// to its initial size, a shared view detaches onto a fresh table.
    fn evict(&mut self) {
        match self {
            MemoCache::Local(m) => *m = LocalMemo::new(),
            MemoCache::Shared(m) => {
                m.table = Arc::new(SharedMemoTable::new());
                m.query = m.table.fresh_query();
            }
        }
    }

    /// Approximate resident bytes of the slot table (the session
    /// layer's occupancy accounting). A shared table is counted in full
    /// by every view holding it.
    fn approx_resident_bytes(&self) -> usize {
        match self {
            MemoCache::Local(m) => m.slots.len() * std::mem::size_of::<MemoSlot>(),
            MemoCache::Shared(_) => {
                (1usize << SHARED_MEMO_BITS) * std::mem::size_of::<SharedSlot>()
            }
        }
    }
}

/// One entry of the **delta cache**: the last `(input, output)` pair a
/// `map`/`μ` node produced, plus the as-if-uncached cost (derivation
/// nodes) of its per-element sub-derivations. When the same expression
/// node next fires on a *superset* of `input` — exactly what happens to
/// every pointwise rule inside an inflationary `while` body — the body
/// runs on the frontier only and `output` is folded in by a sorted
/// merge. `map` and `μ` distribute over union element-by-element, so
/// the incremental result is bit-for-bit the recomputed one.
#[derive(Clone, Copy)]
pub(crate) struct DeltaEntry {
    /// The input set of the previous application.
    pub(crate) input: VId,
    /// Its output.
    pub(crate) output: VId,
    /// As-if-uncached cost of the per-element sub-derivations (0 for
    /// `μ`, which has none); charged on a skip so node budgets stay
    /// strategy-independent.
    pub(crate) cost: u64,
}

/// The delta cache: one [`DeltaEntry`] per `map`/`μ` expression node,
/// keyed by [`EId`]. Cleared per evaluation.
pub(crate) type DeltaMap = HashMap<EId, DeltaEntry, FxBuildHasher>;

/// The mutable cache state one cached evaluation threads through
/// [`eval_eid`]: the apply cache (active under [`EvalConfig::memo`])
/// and the delta cache (active under [`EvalConfig::semi_naive`]).
/// Split from the expression-node snapshot so the walker can read
/// structure through a shared borrow while mutating the caches.
pub(crate) struct Caches {
    pub(crate) memo: MemoCache,
    pub(crate) delta: DeltaMap,
    /// The interned handle of the Prop 2.1 derived term
    /// [`nra_core::derived::cartprod`] — hash-consing makes every
    /// occurrence of the derived product share this `EId`, so the
    /// semi-naive walker can recognise it and apply the fused
    /// delta-join rule `A×B = Aₚ×Bₚ ∪ δA×B ∪ Aₚ×δB` (see
    /// [`eval_cartprod_fused`]).
    pub(crate) cartprod: EId,
    /// The interned handle of the Prop 2.1 `unnest = μ ∘ map(ρ₂)` term
    /// — like `cartprod`, monomorphic and hence recognisable by handle
    /// equality. See [`eval_unnest_fused`].
    pub(crate) unnest: EId,
    /// Recognition caches for the type-parameterised Prop 2.1 shapes —
    /// equality at a type, membership, inclusion, and `nest` — which
    /// cannot be recognised by a single handle (each type instantiation
    /// interns differently) and are matched structurally instead. See
    /// [`crate::shapes`].
    pub(crate) shapes: ShapeCaches,
    /// Recognition cache for the Prop 2.1 selection shape
    /// `σ_p = μ ∘ map(if p then η else ∅ˢ ∘ !)`: maps a `Compose` node
    /// to `Some(predicate)` when it is a selection, `None` when it is
    /// not (so the shape is walked at most once per node). See
    /// [`eval_select_fused`].
    selects: HashMap<EId, Option<EId>, FxBuildHasher>,
    /// Recognition cache for projection-equality predicates
    /// `=_N ∘ ⟨π-chain, π-chain⟩` (the coordinate comparisons every
    /// Prop 2.1 join condition is built from), keyed at the outer
    /// `Compose`. See [`eval_projeq_fused`].
    projeqs: HashMap<EId, Option<(ProjPath, ProjPath)>, FxBuildHasher>,
    /// Recognition cache for projection tupling `⟨π-chain, π-chain⟩`
    /// (the re-assembly step of every Prop 2.1 join), keyed at the
    /// `Tuple` node. See [`eval_projpair_fused`].
    projpairs: HashMap<EId, Option<(ProjPath, ProjPath)>, FxBuildHasher>,
}

/// A chain of pair projections, innermost step first: `false` = `π₁`
/// (`fst`), `true` = `π₂` (`snd`). `compose(snd, fst)` is `[false,
/// true]` — apply `fst`, then `snd`.
type ProjPath = Vec<bool>;

/// Walk a candidate projection chain (`fst`/`snd`/`id` leaves glued by
/// `compose`) into its [`ProjPath`], or `None` if any other head
/// occurs.
fn proj_path(eid: EId, nodes: &[ENode], out: &mut ProjPath) -> Option<()> {
    match &nodes[eid.index()] {
        ENode::Leaf(leaf) => match **leaf {
            Expr::Fst => {
                out.push(false);
                Some(())
            }
            Expr::Snd => {
                out.push(true);
                Some(())
            }
            Expr::Id => Some(()),
            _ => None,
        },
        // g ∘ f applies f first
        ENode::Compose(g, f) => {
            proj_path(*f, nodes, out)?;
            proj_path(*g, nodes, out)
        }
        _ => None,
    }
}

/// Apply a [`ProjPath`] to a value by direct arena reads. `None` when a
/// non-pair shows up mid-chain (the caller falls back to the ordinary
/// derivation, which reports the proper stuck state).
fn apply_proj(a: &intern::ValueArena, mut v: VId, path: &[bool]) -> Option<VId> {
    for &snd in path {
        let (x, y) = a.as_pair(v)?;
        v = if snd { y } else { x };
    }
    Some(v)
}

/// Recognise the Prop 2.1 selection shape at `eid` (already known to be
/// a `Compose` whose left child is the `μ` leaf) and return its
/// predicate, caching the verdict.
pub(crate) fn select_pred(
    eid: EId,
    node: &ENode,
    nodes: &[ENode],
    caches: &mut Caches,
) -> Option<EId> {
    if let Some(&cached) = caches.selects.get(&eid) {
        return cached;
    }
    let pred = (|| {
        let ENode::Compose(_, f) = *node else {
            return None;
        };
        let ENode::Map(b) = nodes[f.index()] else {
            return None;
        };
        let ENode::Cond(p, t, e) = nodes[b.index()] else {
            return None;
        };
        let ENode::Leaf(ref tl) = nodes[t.index()] else {
            return None;
        };
        if **tl != Expr::Sng {
            return None;
        }
        let ENode::Compose(es, bg) = nodes[e.index()] else {
            return None;
        };
        let ENode::Leaf(ref el) = nodes[es.index()] else {
            return None;
        };
        if !matches!(**el, Expr::EmptySet(_)) {
            return None;
        }
        let ENode::Leaf(ref bl) = nodes[bg.index()] else {
            return None;
        };
        (**bl == Expr::Bang).then_some(p)
    })();
    caches.selects.insert(eid, pred);
    pred
}

/// Probe the delta cache for an incremental application: `Some((prev
/// output, prev cost, frontier))` when `eid` last fired on a subset of
/// `input` (the one-pass [`set_merge_delta`] gives the subset test and
/// the frontier together — `old ⊆ new` iff their union interns back to
/// `new`).
///
/// [`set_merge_delta`]: nra_core::value::intern::ValueArena::set_merge_delta
pub(crate) fn delta_probe(
    eid: EId,
    input: VId,
    delta: &DeltaMap,
    va: &mut ValueArena,
) -> Option<(VId, u64, VId)> {
    let e = delta.get(&eid)?;
    if e.input == input {
        // the identical application: the frontier is empty
        return Some((e.output, e.cost, va.empty_set()));
    }
    // subset test by merge *scan* (interns nothing on the miss path),
    // then one pass for the frontier — equivalent to `set_merge_delta`
    // with the union elided, since `old ⊆ new` makes the union `new`
    if !va.is_subset(e.input, input)? {
        return None;
    }
    let fresh = va.set_difference(input, e.input)?;
    Some((e.output, e.cost, fresh))
}

/// Everything one cached (memoised and/or semi-naive) evaluation needs:
/// the synced expression-node snapshot (read through a shared borrow)
/// and the apply + delta caches (read through a mutable one) — split
/// fields so [`eval_eid`] can hold both at once. Pooled thread-locally
/// between evaluations: "clearing" the apply-cache slots is an epoch
/// bump — `O(1)` instead of a multi-megabyte memset, the same reason
/// BDD packages keep their apply cache alive across `apply` calls —
/// and the node snapshot is only ever *extended* (the arena is
/// append-only between clears), so a repeat evaluation pays
/// `O(new nodes)`, not `O(arena)`.
pub(crate) struct MemoState {
    /// Dense copy of the expression arena's node table, indexed by
    /// [`EId::index`], kept in sync via [`MemoState::resync`].
    pub(crate) nodes: Vec<ENode>,
    /// The expression-arena generation `nodes` was synced against.
    generation: u64,
    pub(crate) caches: Caches,
    /// Compiled bytecode programs ([`crate::compile`]), keyed by root
    /// `EId` plus the `memo`/`semi_naive` switches they were
    /// specialised for — compile once, execute on every warm re-eval
    /// and every batch job. `EId`s are append-only stable within an
    /// arena generation, so cached programs stay valid as the arena
    /// grows; a generation bump (and eviction) drops them.
    programs: HashMap<(EId, bool, bool), Arc<crate::compile::Program>>,
}

impl MemoState {
    /// A fresh state against the given expression arena (interns the
    /// monomorphic recognisable derived terms). Sessions own one of
    /// these for their whole lifetime; the facade pools one per thread.
    pub(crate) fn new(ea: &mut ExprArena) -> Self {
        Self::new_with_cache(ea, MemoCache::new_local())
    }

    /// A fresh state around the given apply cache — how batch workers
    /// are built directly onto the parent's shared table, skipping the
    /// local slot-table allocation [`MemoState::new`] would make.
    pub(crate) fn with_shared_table(ea: &mut ExprArena, table: Arc<SharedMemoTable>) -> Self {
        Self::new_with_cache(ea, MemoCache::with_shared_table(table))
    }

    fn new_with_cache(ea: &mut ExprArena, memo: MemoCache) -> Self {
        // a state built onto an existing shared table opens *warm*, so
        // it joins the table's entries instead of detaching from them
        let opens_warm = matches!(memo, MemoCache::Shared(_));
        let mut state = MemoState {
            nodes: Vec::new(),
            generation: ea.generation(),
            caches: Caches {
                memo,
                delta: DeltaMap::default(),
                cartprod: ea.intern(&nra_core::derived::cartprod()),
                unnest: ea.intern(&nra_core::derived::unnest()),
                shapes: ShapeCaches::default(),
                selects: HashMap::default(),
                projeqs: HashMap::default(),
                projpairs: HashMap::default(),
            },
            programs: HashMap::default(),
        };
        state.begin_query(ea, opens_warm);
        state
    }

    /// Switch the apply cache to a fresh shared table (idempotent) —
    /// part of [`crate::EvalSession::make_shared`].
    pub(crate) fn make_shared(&mut self) {
        self.caches.memo.make_shared();
    }

    /// The shared apply table behind this state, if any.
    pub(crate) fn shared_table(&self) -> Option<Arc<SharedMemoTable>> {
        self.caches.memo.shared_table()
    }

    /// Open the next query against this state.
    ///
    /// * `warm = false` (the facade's per-call semantics): a fresh cache
    ///   epoch — every previous apply-cache entry goes stale in `O(1)` —
    ///   and cleared recognition caches.
    /// * `warm = true` (the session semantics): the epoch is kept, so
    ///   apply-cache entries **survive across queries** and later hits
    ///   on them are counted as warm; only the query stamp advances.
    ///   Falls back to a cold start when the expression arena was
    ///   cleared in between (all cached `EId`s went stale) or the query
    ///   stamp would wrap.
    ///
    /// The delta cache is cleared either way: its entries carry
    /// per-evaluation cost accounting.
    pub(crate) fn begin_query(&mut self, ea: &mut ExprArena, warm: bool) {
        // interning is canonical, so re-interning after an arena clear
        // (or on a pooled state) keeps the recognised handles current
        self.caches.cartprod = ea.intern(&nra_core::derived::cartprod());
        self.caches.unnest = ea.intern(&nra_core::derived::unnest());
        let generation_changed = self.resync(ea);
        if !self.caches.memo.begin_query(warm, generation_changed) {
            // the shape-recognition caches key on EIds, which a cold
            // start treats as untrusted (the arena may have been reset)
            self.caches.shapes.clear();
            self.caches.selects.clear();
            self.caches.projeqs.clear();
            self.caches.projpairs.clear();
        }
        // the delta cache has no epochs: entries hold per-evaluation
        // costs, so every query starts from an empty map
        self.caches.delta.clear();
    }

    /// Bring the node snapshot up to date with the given expression
    /// arena — needed again mid-evaluation whenever new expressions were
    /// interned after [`MemoState::begin_query`] (the lazy strategy does
    /// this before delegating sub-evaluations). Returns whether the
    /// arena was cleared since the last sync (all snapshot prefixes and
    /// cached `EId`s were stale).
    pub(crate) fn resync(&mut self, ea: &ExprArena) -> bool {
        let changed = ea.generation() != self.generation;
        if changed {
            self.nodes.clear();
            self.generation = ea.generation();
            // compiled programs embed EIds and entry pcs resolved
            // against the old snapshot
            self.programs.clear();
        }
        ea.extend_snapshot(&mut self.nodes);
        changed
    }

    /// Fetch — or compile and cache — the bytecode program for `root`
    /// under `config`'s `memo`/`semi_naive` switches (the compiled
    /// backend's entry point). Callers must have brought the node
    /// snapshot up to date first ([`MemoState::begin_query`] or
    /// [`MemoState::resync`]), so the DAG under `root` is covered.
    pub(crate) fn program(
        &mut self,
        root: EId,
        config: &EvalConfig,
    ) -> Arc<crate::compile::Program> {
        let key = (root, config.memo, config.semi_naive);
        if let Some(program) = self.programs.get(&key) {
            return Arc::clone(program);
        }
        let program = Arc::new(crate::compile::compile(
            root,
            &self.nodes,
            &mut self.caches,
            config,
        ));
        self.programs.insert(key, Arc::clone(&program));
        program
    }

    /// Drop everything this state retains — apply-cache entries (the
    /// slot table shrinks back to its initial size), node snapshot, and
    /// recognition caches. The session layer calls this on
    /// generation-based eviction, together with clearing its arenas.
    pub(crate) fn evict(&mut self) {
        self.caches.memo.evict();
        self.nodes = Vec::new();
        self.caches.delta = DeltaMap::default();
        self.caches.shapes = ShapeCaches::default();
        self.caches.selects = HashMap::default();
        self.caches.projeqs = HashMap::default();
        self.caches.projpairs = HashMap::default();
        self.programs = HashMap::default();
    }

    /// Approximate resident bytes of the retained cache state — the
    /// apply-cache slots, the node snapshot, and the compiled-program
    /// cache (the recognition caches are negligible next to any).
    pub(crate) fn approx_resident_bytes(&self) -> usize {
        self.caches.memo.approx_resident_bytes()
            + self.nodes.len() * std::mem::size_of::<ENode>()
            + self
                .programs
                .values()
                .map(|p| p.approx_resident_bytes())
                .sum::<usize>()
    }

    /// Take the pooled per-thread state (or allocate one) and open a
    /// cold query against the thread-local expression arena — the
    /// facade's entry point.
    pub(crate) fn acquire_pooled(ea: &mut ExprArena) -> Self {
        match MEMO_POOL.take() {
            Some(mut state) => {
                state.begin_query(ea, false);
                state
            }
            None => MemoState::new(ea),
        }
    }

    /// Hand the state back to the thread-local pool.
    pub(crate) fn release_pooled(self) {
        MEMO_POOL.set(Some(self));
    }
}

/// The cached §3 rule set over the *interned* expression: identical
/// semantics to [`eval_vid`] (the differential harnesses hold the two
/// bit-for-bit equal), but every recursion step carries an [`EId`],
/// which keys both caches:
///
/// * under [`EvalConfig::memo`], each judgment `f(C) ⇓ C'` is first
///   looked up in the apply cache `(EId, VId) → VId` and recorded there
///   after a miss — a hit returns the cached handle in `O(1)` without
///   re-deriving, which collapses the repeated body applications inside
///   `while`, `map` over recurring elements, and `powersetₘ` chains;
/// * under [`EvalConfig::semi_naive`], the pointwise set rules (`map`,
///   `μ`) consult the delta cache: when their input grew from the
///   previous application of the same node — the steady state of every
///   rule inside an inflationary `while` body — the body runs on the
///   frontier only and the previous output is folded in by a sorted
///   merge, and the `while` rule itself threads the `(total, delta)`
///   pair, recording each iterate's frontier in
///   [`EvalStats::while_frontiers`].
///
/// Hits and skips are counted in [`EvalStats::memo_hits`] /
/// [`EvalStats::delta_skipped`] and deliberately do **not** re-count
/// the skipped derivation's nodes or object observations — but they do
/// charge its recorded as-if-uncached cost against the node budget, so
/// budget exhaustion is strategy-independent.
pub(crate) fn eval_eid(
    eid: EId,
    input: VId,
    ctx: &mut Ctx,
    nodes: &[ENode],
    caches: &mut Caches,
    va: &mut ValueArena,
) -> Result<VId, EvalError> {
    let memo = ctx.config.memo;
    let key = MemoCache::key(eid, input);
    if memo {
        if let Some((out, cost, warm)) = caches.memo.probe(key) {
            ctx.stats.memo_hits += 1;
            if warm {
                ctx.stats.warm_hits += 1;
            }
            ctx.charge(cost)?;
            return Ok(out);
        }
        ctx.stats.memo_misses += 1;
    }
    if ctx.config.semi_naive {
        // the fused-rule hooks; every stored slot carries the cost the
        // fused application actually charged (one node for the pure
        // projection rules; node + folded frontier + fresh predicate
        // derivations for the selection), so later hits keep charging
        // the budget exactly what a re-run would
        let fused_start = ctx.charged_nodes;
        let fused = if eid == caches.cartprod {
            eval_cartprod_fused(eid, input, ctx, caches, va)?
        } else if eid == caches.unnest {
            eval_unnest_fused(eid, input, ctx, caches, va)?
        } else if let ENode::Compose(g, _) = nodes[eid.index()] {
            // one-read pre-filters before the (cached) full shape
            // recognitions: σ_p starts `μ ∘ …`, projection equality
            // starts `=_N ∘ …`, inclusion starts `empty ∘ …`,
            // membership starts `(¬ ∘ empty) ∘ …`, nest starts
            // `map(⟨π₁, …⟩) ∘ …`
            match &nodes[g.index()] {
                ENode::Leaf(l) if **l == Expr::Flatten => {
                    match select_pred(eid, &nodes[eid.index()], nodes, caches) {
                        Some(pred) => eval_select_fused(eid, pred, input, ctx, nodes, caches, va)?,
                        None => None,
                    }
                }
                ENode::Leaf(l) if **l == Expr::EqNat => {
                    eval_projeq_fused(eid, input, ctx, nodes, caches, va)?
                }
                ENode::Leaf(l) if **l == Expr::IsEmpty => {
                    eval_subset_fused(eid, input, ctx, nodes, caches, va)?
                }
                ENode::Compose(..) => eval_member_fused(eid, input, ctx, nodes, caches, va)?,
                ENode::Map(_) => eval_nest_fused(eid, input, ctx, nodes, caches, va)?,
                _ => None,
            }
        } else if matches!(nodes[eid.index()], ENode::Tuple(..)) {
            eval_projpair_fused(eid, input, ctx, nodes, caches, va)?
        } else {
            None
        };
        if let Some(output) = fused {
            if memo {
                caches
                    .memo
                    .store(key, output, ctx.charged_nodes - fused_start);
            }
            return Ok(output);
        }
    }
    let cost_start = ctx.charged_nodes;
    let node = &nodes[eid.index()];
    ctx.node(node.head_index())?;
    let output = match node {
        ENode::Leaf(leaf) if ctx.config.semi_naive && **leaf == Expr::Flatten => {
            eval_flatten_delta(eid, input, ctx, caches, va)?
        }
        ENode::Leaf(leaf) => eval_leaf_rule(leaf, input, ctx, va)?,
        recursive => {
            ctx.observe_vid(va, input)?;
            let output = match *recursive {
                ENode::Tuple(f, g) => {
                    let a = eval_eid(f, input, ctx, nodes, caches, va)?;
                    let b = eval_eid(g, input, ctx, nodes, caches, va)?;
                    va.pair(a, b)
                }
                ENode::Map(f) => eval_map_eid(eid, f, input, ctx, nodes, caches, va)?,
                ENode::Cond(c, then, els) => {
                    let cv = eval_eid(c, input, ctx, nodes, caches, va)?;
                    match va.as_bool(cv) {
                        Some(true) => eval_eid(then, input, ctx, nodes, caches, va)?,
                        Some(false) => eval_eid(els, input, ctx, nodes, caches, va)?,
                        None => return Err(stuck("if", "condition is not boolean")),
                    }
                }
                ENode::Compose(g, f) => {
                    let mid = eval_eid(f, input, ctx, nodes, caches, va)?;
                    eval_eid(g, mid, ctx, nodes, caches, va)?
                }
                ENode::While(f) => {
                    let mut current = input;
                    let mut iterations: u64 = 0;
                    loop {
                        let next = eval_eid(f, current, ctx, nodes, caches, va)?;
                        iterations += 1;
                        ctx.stats.while_iterations += 1;
                        record_frontier(ctx, va, current, next);
                        if next == current {
                            break current;
                        }
                        if iterations >= ctx.config.max_while_iters {
                            return Err(EvalError::WhileDiverged { iterations });
                        }
                        current = next;
                    }
                }
                ENode::Leaf(_) => unreachable!("leaf handled above"),
            };
            ctx.observe_vid(va, output)?;
            output
        }
    };
    if memo {
        caches
            .memo
            .store(key, output, ctx.charged_nodes - cost_start);
    }
    Ok(output)
}

/// Thread the `(total, delta)` pair of one semi-naive `while` iterate:
/// record the frontier cardinality `|next ∖ current|` in
/// [`EvalStats::while_frontiers`] — a count-only merge scan, nothing is
/// interned. No-op in the default mode and on non-set iterates. Shared
/// with the traced builder.
pub(crate) fn record_frontier(ctx: &mut Ctx, va: &ValueArena, current: VId, next: VId) {
    if ctx.config.semi_naive {
        if let Some(card) = va.set_delta_cardinality(current, next) {
            ctx.stats.while_frontiers.push(card);
        }
    }
}

/// The `map` rule of [`eval_eid`], with the semi-naive incremental
/// path: `map(f)` distributes over union element-by-element, so when
/// the input is a superset of the node's previous input, `{f(x) | x ∈
/// fresh}` merged into the previous output *is* the full result —
/// bit-for-bit, for every `f`.
fn eval_map_eid(
    eid: EId,
    f: EId,
    input: VId,
    ctx: &mut Ctx,
    nodes: &[ENode],
    caches: &mut Caches,
    va: &mut ValueArena,
) -> Result<VId, EvalError> {
    let items = va
        .as_set(input)
        .ok_or_else(|| stuck("map", "input is not a set"))?;
    if ctx.config.semi_naive {
        if let Some((prev_out, prev_cost, fresh)) = delta_probe(eid, input, &caches.delta, va) {
            let fresh_items = va.as_set(fresh).expect("frontier is a set");
            ctx.stats.delta_hits += 1;
            ctx.stats.delta_skipped += (items.len() - fresh_items.len()) as u64;
            let cost_start = ctx.charged_nodes;
            ctx.charge(prev_cost)?;
            let mut images = Vec::with_capacity(fresh_items.len());
            for &item in fresh_items.iter() {
                images.push(eval_eid(f, item, ctx, nodes, caches, va)?);
            }
            let imgs = va.set_from_vec(images);
            let output = va
                .set_merge_frontier(prev_out, &[imgs])
                .expect("map outputs are sets");
            let cost = ctx.charged_nodes - cost_start;
            caches.delta.insert(
                eid,
                DeltaEntry {
                    input,
                    output,
                    cost,
                },
            );
            return Ok(output);
        }
    }
    let cost_start = ctx.charged_nodes;
    let mut out = Vec::with_capacity(items.len());
    for &item in items.iter() {
        out.push(eval_eid(f, item, ctx, nodes, caches, va)?);
    }
    let output = va.set_from_vec(out);
    if ctx.config.semi_naive {
        let cost = ctx.charged_nodes - cost_start;
        caches.delta.insert(
            eid,
            DeltaEntry {
                input,
                output,
                cost,
            },
        );
    }
    Ok(output)
}

/// The fused delta-join rule for the Prop 2.1 derived product: when the
/// semi-naive walker reaches the (hash-consed, hence recognisable)
/// `cartprod` term on a pair of sets, it constructs `A × B` directly in
/// the arena instead of deriving the `μ ∘ map(ρ₂) ∘ ρ₁` spread — and
/// when the node's previous application was on `(Aₚ ⊆ A, Bₚ ⊆ B)` (the
/// steady state of the self-join inside `tc_step`), only the delta
/// products are built and merged into the previous result:
///
/// ```text
/// A × B  =  Aₚ × Bₚ  ∪  δA × B  ∪  Aₚ × δB
/// ```
///
/// The output is the canonical set either way — bit-for-bit the derived
/// result. The §3 observations of this rule are the judgment's own
/// boundary objects (a *subset* of the derivation's, so counters never
/// inflate and the complexity never grows); the skipped spread is the
/// point — semi-naive turns the dominant `O(iterations × |closure|²)`
/// re-materialisation into `O(|closure|²)` total work. Returns
/// `Ok(None)` when the input is not a pair of sets (the caller falls
/// back to the ordinary derivation, which reports the proper stuck
/// state).
pub(crate) fn eval_cartprod_fused(
    eid: EId,
    input: VId,
    ctx: &mut Ctx,
    caches: &mut Caches,
    va: &mut ValueArena,
) -> Result<Option<VId>, EvalError> {
    #[derive(Clone, Copy)]
    enum Plan {
        /// Build `A × B` from scratch.
        Full(VId, VId),
        /// Build `δA × B ∪ Aₚ × δB` and merge into the previous output.
        Delta {
            prev_out: VId,
            a_prev: VId,
            delta_a: VId,
            b: VId,
            delta_b: VId,
        },
    }
    let plan = (|va: &mut ValueArena| {
        let (a, b) = va.as_pair(input)?;
        va.as_set(a)?;
        va.as_set(b)?;
        let incremental = caches.delta.get(&eid).copied().and_then(|e| {
            let (a_prev, b_prev) = va.as_pair(e.input)?;
            if !(va.is_subset(a_prev, a)? && va.is_subset(b_prev, b)?) {
                return None;
            }
            let delta_a = va.set_difference(a, a_prev)?;
            let delta_b = va.set_difference(b, b_prev)?;
            Some(Plan::Delta {
                prev_out: e.output,
                a_prev,
                delta_a,
                b,
                delta_b,
            })
        });
        Some(incremental.unwrap_or(Plan::Full(a, b)))
    })(va);
    let Some(plan) = plan else {
        return Ok(None);
    };
    // one derivation node for the fused judgment, plus its two boundary
    // observations — a strict subset of what the spread would observe
    ctx.node(ENode::Compose(eid, eid).head_index())?;
    ctx.observe_vid(va, input)?;
    let output = match plan {
        Plan::Full(a, b) => {
            let xs = va.as_set(a).expect("checked above");
            let ys = va.as_set(b).expect("checked above");
            let mut pairs = Vec::with_capacity(xs.len() * ys.len());
            for &x in xs.iter() {
                for &y in ys.iter() {
                    pairs.push(va.pair(x, y));
                }
            }
            va.set_from_vec(pairs)
        }
        Plan::Delta {
            prev_out,
            a_prev,
            delta_a,
            b,
            delta_b,
        } => {
            let da = va.as_set(delta_a).expect("frontier is a set");
            let db = va.as_set(delta_b).expect("frontier is a set");
            let ys = va.as_set(b).expect("checked above");
            let xs_prev = va.as_set(a_prev).expect("previous input was a set");
            let mut pairs = Vec::with_capacity(da.len() * ys.len() + xs_prev.len() * db.len());
            for &x in da.iter() {
                for &y in ys.iter() {
                    pairs.push(va.pair(x, y));
                }
            }
            for &x in xs_prev.iter() {
                for &y in db.iter() {
                    pairs.push(va.pair(x, y));
                }
            }
            let fresh = va.set_from_vec(pairs);
            va.set_merge_frontier(prev_out, &[fresh])
                .expect("products are sets")
        }
    };
    if let Plan::Delta { prev_out, .. } = plan {
        ctx.stats.delta_hits += 1;
        ctx.stats.delta_skipped += va.cardinality(prev_out).unwrap_or(0) as u64;
    }
    ctx.observe_vid(va, output)?;
    caches.delta.insert(
        eid,
        DeltaEntry {
            input,
            output,
            cost: 0,
        },
    );
    Ok(Some(output))
}

/// The fused rule for projection-equality predicates
/// `=_N ∘ ⟨π-chain, π-chain⟩` — the coordinate comparison at the heart
/// of every Prop 2.1 join condition (`eq_coords`). Both coordinates are
/// read by direct arena walks and compared, under a single borrow —
/// one derivation node instead of the ~8-node compose/tuple/projection
/// spread, with the same boolean. Returns `Ok(None)` when the shape
/// does not match or the input does not fit it (fall back to the
/// ordinary derivation and its stuck reporting).
pub(crate) fn eval_projeq_fused(
    eid: EId,
    input: VId,
    ctx: &mut Ctx,
    nodes: &[ENode],
    caches: &mut Caches,
    va: &mut ValueArena,
) -> Result<Option<VId>, EvalError> {
    let recognised = caches.projeqs.entry(eid).or_insert_with(|| {
        let ENode::Compose(_, f) = nodes[eid.index()] else {
            return None;
        };
        let ENode::Tuple(p1, p2) = nodes[f.index()] else {
            return None;
        };
        let (mut a, mut b) = (ProjPath::new(), ProjPath::new());
        proj_path(p1, nodes, &mut a)?;
        proj_path(p2, nodes, &mut b)?;
        Some((a, b))
    });
    let Some((p1, p2)) = recognised else {
        return Ok(None);
    };
    let output = (|| {
        let x = apply_proj(va, input, p1)?;
        let y = apply_proj(va, input, p2)?;
        match (va.as_nat(x), va.as_nat(y)) {
            (Some(m), Some(n)) => Some(m == n),
            _ => None,
        }
    })();
    let Some(output) = output else {
        return Ok(None);
    };
    let output = va.bool_(output);
    ctx.node(ENode::Compose(eid, eid).head_index())?;
    ctx.observe_vid(va, input)?;
    ctx.observe_vid(va, output)?;
    Ok(Some(output))
}

/// The fused rule for projection tupling `⟨π-chain, π-chain⟩` — the
/// re-assembly step of every Prop 2.1 join (`tuple(coord_a, coord_d)`).
/// One derivation node and one arena borrow instead of the
/// compose/projection spread; the pair is bit-identical. `Ok(None)`
/// falls back as in [`eval_projeq_fused`].
pub(crate) fn eval_projpair_fused(
    eid: EId,
    input: VId,
    ctx: &mut Ctx,
    nodes: &[ENode],
    caches: &mut Caches,
    va: &mut ValueArena,
) -> Result<Option<VId>, EvalError> {
    let recognised = caches.projpairs.entry(eid).or_insert_with(|| {
        let ENode::Tuple(p1, p2) = nodes[eid.index()] else {
            return None;
        };
        let (mut a, mut b) = (ProjPath::new(), ProjPath::new());
        proj_path(p1, nodes, &mut a)?;
        proj_path(p2, nodes, &mut b)?;
        // plain ⟨id, id⟩ (dup) gains nothing from fusion
        (!(a.is_empty() && b.is_empty())).then_some((a, b))
    });
    let Some((p1, p2)) = recognised else {
        return Ok(None);
    };
    let output = (|| {
        let x = apply_proj(va, input, p1)?;
        let y = apply_proj(va, input, p2)?;
        Some((x, y))
    })();
    let Some((x, y)) = output else {
        return Ok(None);
    };
    let output = va.pair(x, y);
    ctx.node(ENode::Tuple(eid, eid).head_index())?;
    ctx.observe_vid(va, input)?;
    ctx.observe_vid(va, output)?;
    Ok(Some(output))
}

/// The fused rule for the Prop 2.1 selection
/// `σ_p = μ ∘ map(if p then η else ∅ˢ ∘ !)`: evaluate the predicate
/// per element (a full, memo-shared §3 sub-derivation — selection
/// semantics stay honest) but keep the kept elements directly instead
/// of deriving the singleton/empty wrapping and the `μ` merge over
/// `|S|` singletons. Combined with the delta cache, a grown input
/// evaluates `p` on the frontier only and merges the newly selected
/// elements into the previous result — bit-for-bit the derived output,
/// with the §3 counters only ever shrinking. Returns `Ok(None)` when
/// the input is not a set (the caller falls back to the ordinary
/// derivation and its stuck reporting).
pub(crate) fn eval_select_fused(
    eid: EId,
    pred: EId,
    input: VId,
    ctx: &mut Ctx,
    nodes: &[ENode],
    caches: &mut Caches,
    va: &mut ValueArena,
) -> Result<Option<VId>, EvalError> {
    let Some(items) = va.as_set(input) else {
        return Ok(None);
    };
    // one derivation node for the fused judgment + boundary observations
    ctx.node(ENode::Compose(eid, eid).head_index())?;
    ctx.observe_vid(va, input)?;
    let probed = delta_probe(eid, input, &caches.delta, va);
    let (prev_out, prev_cost, fresh_items) = match probed {
        Some((prev_out, prev_cost, fresh)) => {
            let fresh_items = va.as_set(fresh).expect("frontier is a set");
            ctx.stats.delta_hits += 1;
            ctx.stats.delta_skipped += (items.len() - fresh_items.len()) as u64;
            (Some(prev_out), prev_cost, fresh_items)
        }
        None => (None, 0, items),
    };
    let cost_start = ctx.charged_nodes;
    ctx.charge(prev_cost)?;
    let mut selected = Vec::new();
    for &item in fresh_items.iter() {
        let verdict = eval_eid(pred, item, ctx, nodes, caches, va)?;
        match va.as_bool(verdict) {
            Some(true) => selected.push(item),
            Some(false) => {}
            None => return Err(stuck("if", "condition is not boolean")),
        }
    }
    // `selected` preserves the canonical element order, so this is a
    // sort of an already-sorted vector plus one merge
    let sel = va.set_from_vec(selected);
    let output = match prev_out {
        Some(prev) => va
            .set_merge_frontier(prev, &[sel])
            .expect("selections are sets"),
        None => sel,
    };
    ctx.observe_vid(va, output)?;
    let cost = ctx.charged_nodes - cost_start;
    caches.delta.insert(
        eid,
        DeltaEntry {
            input,
            output,
            cost,
        },
    );
    Ok(Some(output))
}

/// The `μ` (flatten) rule of [`eval_eid`] under semi-naive iteration:
/// `μ` distributes over union of its input's *elements*, so a grown
/// input only needs its fresh inner sets folded into the previous
/// output — the n-ary frontier merge, never a re-sort. Falls back to
/// the one-shot [`eval_leaf_rule`] when the node has no usable
/// previous application.
pub(crate) fn eval_flatten_delta(
    eid: EId,
    input: VId,
    ctx: &mut Ctx,
    caches: &mut Caches,
    va: &mut ValueArena,
) -> Result<VId, EvalError> {
    let probed = delta_probe(eid, input, &caches.delta, va);
    let output = match probed {
        Some((prev_out, _, fresh)) => {
            let fresh_sets = va.as_set(fresh).expect("frontier is a set");
            ctx.stats.delta_hits += 1;
            ctx.stats.delta_skipped +=
                (va.cardinality(input).unwrap_or(0) - fresh_sets.len()) as u64;
            ctx.observe_vid(va, input)?;
            let output = va
                .set_merge_frontier(prev_out, &fresh_sets)
                .ok_or_else(|| stuck("flatten", "element is not a set"))?;
            ctx.observe_vid(va, output)?;
            output
        }
        None => eval_leaf_rule(&Expr::Flatten, input, ctx, va)?,
    };
    caches.delta.insert(
        eid,
        DeltaEntry {
            input,
            output,
            cost: 0,
        },
    );
    Ok(output)
}

/// The fused delta rule for the Prop 2.1 `unnest = μ ∘ map(ρ₂)` term
/// (monomorphic, hence recognised by handle equality like `cartprod`):
/// `unnest({(x₁,S₁),…})` is constructed directly in the arena as
/// `⋃ᵢ {xᵢ} × Sᵢ` instead of deriving the map/ρ₂/μ spread — and since
/// unnest distributes over union of its input's *elements*, a grown
/// input (the steady state inside an inflationary `while`) only
/// processes its fresh `(x, S)` pairs and folds the previous output in
/// by a sorted merge. Bit-for-bit the derived result; the §3
/// observations (the judgment's own boundary objects) are a subset of
/// the spread's. Returns `Ok(None)` when the input does not fit the
/// shape (the ordinary derivation then reports the proper stuck state).
pub(crate) fn eval_unnest_fused(
    eid: EId,
    input: VId,
    ctx: &mut Ctx,
    caches: &mut Caches,
    va: &mut ValueArena,
) -> Result<Option<VId>, EvalError> {
    let Some(items) = va.as_set(input) else {
        return Ok(None);
    };
    let probed = delta_probe(eid, input, &caches.delta, va);
    let (prev_out, work_items) = match &probed {
        Some((prev_out, _, fresh)) => (Some(*prev_out), va.as_set(*fresh).expect("frontier")),
        None => (None, items.clone()),
    };
    let mut pairs = Vec::new();
    for &item in work_items.iter() {
        let Some((x, s)) = va.as_pair(item) else {
            return Ok(None);
        };
        let Some(ys) = va.as_set(s) else {
            return Ok(None);
        };
        for &y in ys.iter() {
            pairs.push(va.pair(x, y));
        }
    }
    ctx.node(ENode::Compose(eid, eid).head_index())?;
    ctx.observe_vid(va, input)?;
    let fresh_pairs = va.set_from_vec(pairs);
    let output = match prev_out {
        Some(prev) => {
            ctx.stats.delta_hits += 1;
            ctx.stats.delta_skipped += (items.len() - work_items.len()) as u64;
            va.set_merge_frontier(prev, &[fresh_pairs])
                .expect("unnest outputs are sets")
        }
        None => fresh_pairs,
    };
    ctx.observe_vid(va, output)?;
    caches.delta.insert(
        eid,
        DeltaEntry {
            input,
            output,
            cost: 0,
        },
    );
    Ok(Some(output))
}

/// The fused rule for the Prop 2.1 membership predicate
/// `∈ = ¬empty ∘ σ_{=ₜ} ∘ ρ₂` (recognised structurally at any element
/// type — see [`crate::shapes`]): handle equality *is* structural
/// equality within one arena, so `x ∈ S` is a binary search over `S`'s
/// canonical element slice instead of spreading `{x} × S` and deriving
/// `=ₜ` per element. One derivation node, the same boolean. `Ok(None)`
/// on shape mismatch — or when the input does not *conform* to the
/// witnessed type `t`: the derived `=ₜ` is only total-and-structural on
/// conforming values (it gets stuck on shape mismatches, and `=_unit`
/// is constantly true on anything), so ill-typed inputs fall back to
/// the ordinary derivation and keep its exact behaviour.
pub(crate) fn eval_member_fused(
    eid: EId,
    input: VId,
    ctx: &mut Ctx,
    nodes: &[ENode],
    caches: &mut Caches,
    va: &mut ValueArena,
) -> Result<Option<VId>, EvalError> {
    let Some(t) = crate::shapes::member_elem_type(eid, nodes, &mut caches.shapes) else {
        return Ok(None);
    };
    let Some((x, s)) = va.as_pair(input) else {
        return Ok(None);
    };
    let Some(found) = va.set_contains(s, x) else {
        return Ok(None);
    };
    let items = va.as_set(s).expect("checked above");
    if !crate::shapes::conforms_cached(&mut caches.shapes, va, eid, x, &t)
        || !items
            .iter()
            .all(|&y| crate::shapes::conforms_cached(&mut caches.shapes, va, eid, y, &t))
    {
        return Ok(None);
    }
    ctx.node(ENode::Compose(eid, eid).head_index())?;
    ctx.observe_vid(va, input)?;
    let output = va.bool_(found);
    ctx.observe_vid(va, output)?;
    Ok(Some(output))
}

/// The fused rule for the Prop 2.1 inclusion predicate
/// `⊆ = empty ∘ σ_{∉} ∘ ρ₁` (recognised structurally at any element
/// type): one merge scan over the two canonical element slices instead
/// of the ρ₁ spread with a per-element membership sub-derivation.
/// `Ok(None)` on shape mismatch or when either set's elements do not
/// conform to the witnessed type (same soundness gate as
/// [`eval_member_fused`]).
pub(crate) fn eval_subset_fused(
    eid: EId,
    input: VId,
    ctx: &mut Ctx,
    nodes: &[ENode],
    caches: &mut Caches,
    va: &mut ValueArena,
) -> Result<Option<VId>, EvalError> {
    let Some(t) = crate::shapes::subset_elem_type(eid, nodes, &mut caches.shapes) else {
        return Ok(None);
    };
    let Some((a, b)) = va.as_pair(input) else {
        return Ok(None);
    };
    let Some(holds) = va.is_subset(a, b) else {
        return Ok(None);
    };
    for set in [a, b] {
        let items = va.as_set(set).expect("checked above");
        if !items
            .iter()
            .all(|&y| crate::shapes::conforms_cached(&mut caches.shapes, va, eid, y, &t))
        {
            return Ok(None);
        }
    }
    ctx.node(ENode::Compose(eid, eid).head_index())?;
    ctx.observe_vid(va, input)?;
    let output = va.bool_(holds);
    ctx.observe_vid(va, output)?;
    Ok(Some(output))
}

/// The fused rule for the Prop 2.1 grouping operator
/// `nest(R) = {(x, {y | (x,y) ∈ R}) | x ∈ π₁(R)}` (recognised
/// structurally at any key/value type): one grouping pass over `R`'s
/// canonical elements instead of the π₁-image/ρ₁/σ spread whose
/// intermediate product is quadratic in `|R|`.
///
/// Unlike `map`/`μ`/`unnest`, nest does **not** distribute over union —
/// a grown input *replaces* group values rather than adding elements —
/// so there is no frontier rule: the fused rule recomputes the grouping
/// from the full input (linear, versus the derived spread's quadratic
/// re-derivation). `Ok(None)` on shape mismatch, on non-pair elements,
/// or when a key does not conform to the witnessed key type `s` (the
/// derived `=ₛ` comparing keys is only structural on conforming values
/// — same soundness gate as [`eval_member_fused`]).
pub(crate) fn eval_nest_fused(
    eid: EId,
    input: VId,
    ctx: &mut Ctx,
    nodes: &[ENode],
    caches: &mut Caches,
    va: &mut ValueArena,
) -> Result<Option<VId>, EvalError> {
    let Some(key_type) = crate::shapes::nest_key_type(eid, nodes, &mut caches.shapes) else {
        return Ok(None);
    };
    let Some(items) = va.as_set(input) else {
        return Ok(None);
    };
    // group in canonical element order: keys first occur in that order,
    // and each group's values arrive ascending (pairs sharing a first
    // component sort by their second within the canonical slice)
    let mut keys: Vec<VId> = Vec::new();
    let mut groups: HashMap<VId, Vec<VId>, FxBuildHasher> = HashMap::default();
    for &item in items.iter() {
        let Some((x, y)) = va.as_pair(item) else {
            return Ok(None);
        };
        if !crate::shapes::conforms_cached(&mut caches.shapes, va, eid, x, &key_type) {
            return Ok(None);
        }
        groups
            .entry(x)
            .or_insert_with(|| {
                keys.push(x);
                Vec::new()
            })
            .push(y);
    }
    ctx.node(ENode::Compose(eid, eid).head_index())?;
    ctx.observe_vid(va, input)?;
    let mut out = Vec::with_capacity(keys.len());
    for x in keys {
        let ys = groups.remove(&x).expect("key recorded with its group");
        let group = va.set_from_vec(ys);
        out.push(va.pair(x, group));
    }
    let output = va.set_from_vec(out);
    ctx.observe_vid(va, output)?;
    Ok(Some(output))
}

/// Apply a non-recursive primitive on the interned path (every rule
/// without sub-derivations). Shared with the derivation-tree builder in
/// [`crate::trace`].
pub(crate) fn apply_leaf_vid(
    expr: &Expr,
    input: VId,
    ctx: &mut Ctx,
    va: &mut ValueArena,
) -> Result<VId, EvalError> {
    // the powerset leaves need the budget context; everything else is a
    // plain arena operation
    match expr {
        Expr::Powerset => eval_powerset_vid(input, ctx, va),
        Expr::PowersetM(m) => eval_powerset_m_vid(*m, input, ctx, va),
        Expr::Const(v, _) => Ok(va.intern(v)),
        _ => apply_simple_leaf(expr, input, va),
    }
}

/// The non-recursive, non-powerset rules, against an explicitly borrowed
/// arena — a single borrow per leaf instead of one per constructed node
/// (a `pairwith` over k elements would otherwise take k + 1 of them).
fn apply_simple_leaf(expr: &Expr, input: VId, a: &mut ValueArena) -> Result<VId, EvalError> {
    let output = match expr {
        Expr::Id => input,
        Expr::Bang => a.unit(),
        Expr::Fst => match a.as_pair(input) {
            Some((x, _)) => x,
            None => return Err(stuck("fst", "input is not a pair")),
        },
        Expr::Snd => match a.as_pair(input) {
            Some((_, y)) => y,
            None => return Err(stuck("snd", "input is not a pair")),
        },
        Expr::Sng => a.set([input]),
        Expr::Flatten => {
            let sets = a
                .as_set(input)
                .ok_or_else(|| stuck("flatten", "input is not a set"))?;
            // n-ary merge over the inner sets' canonical element slices:
            // μ never re-sorts what the arena already keeps sorted
            a.set_from_sorted_merge(&sets)
                .ok_or_else(|| stuck("flatten", "element is not a set"))?
        }
        Expr::PairWith => match a.as_pair(input) {
            Some((x, s)) => match a.as_set(s) {
                Some(items) => {
                    let pairs: Vec<VId> = items.iter().map(|&y| a.pair(x, y)).collect();
                    a.set_from_vec(pairs)
                }
                None => return Err(stuck("pairwith", "second component is not a set")),
            },
            None => return Err(stuck("pairwith", "input is not a pair")),
        },
        Expr::EmptySet(_) => a.empty_set(),
        Expr::Union => match a.as_pair(input) {
            // one linear merge over the two canonical element slices
            Some((x, y)) => a
                .set_union(x, y)
                .ok_or_else(|| stuck("union", "components are not sets"))?,
            None => return Err(stuck("union", "input is not a pair")),
        },
        Expr::EqNat => match a.as_pair(input) {
            Some((x, y)) => match (a.as_nat(x), a.as_nat(y)) {
                (Some(m), Some(n)) => a.bool_(m == n),
                _ => return Err(stuck("eq", "components are not naturals")),
            },
            None => return Err(stuck("eq", "input is not a pair")),
        },
        Expr::IsEmpty => match a.cardinality(input) {
            Some(k) => a.bool_(k == 0),
            None => return Err(stuck("isempty", "input is not a set")),
        },
        Expr::ConstTrue => a.bool_(true),
        Expr::ConstFalse => a.bool_(false),
        Expr::Powerset
        | Expr::PowersetM(_)
        | Expr::Const(..)
        | Expr::Tuple(..)
        | Expr::Map(_)
        | Expr::Cond(..)
        | Expr::Compose(..)
        | Expr::While(_) => {
            unreachable!("apply_simple_leaf called on a recursive or powerset construct")
        }
    };
    Ok(output)
}

/// Predicted size of `powerset({e₁,…,eₖ})` in the §3 measure:
/// `1 + 2ᵏ + 2ᵏ⁻¹ · Σᵢ size(eᵢ)` (the outer set node, one node per subset,
/// and each element occurring in half of the subsets). Saturating — huge
/// or deeply shared inputs report `u128::MAX`/`u64::MAX` rather than
/// wrapping in release builds.
pub fn powerset_output_size(elem_sizes: &[u64]) -> u128 {
    let k = elem_sizes.len() as u32;
    let sum = elem_sizes
        .iter()
        .fold(0u128, |acc, &s| acc.saturating_add(s as u128));
    if k == 0 {
        return 2; // {∅}
    }
    if k >= 120 {
        return u128::MAX;
    }
    let subsets = 1u128 << k;
    1u128
        .saturating_add(subsets)
        .saturating_add((subsets >> 1).saturating_mul(sum))
}

fn eval_powerset_vid(input: VId, ctx: &mut Ctx, va: &mut ValueArena) -> Result<VId, EvalError> {
    let items = va
        .as_set(input)
        .ok_or_else(|| stuck("powerset", "input is not a set"))?;
    let sizes: Vec<u64> = items.iter().map(|&v| va.size(v)).collect();
    let predicted = powerset_output_size(&sizes);
    let predicted64 = u64::try_from(predicted).unwrap_or(u64::MAX);
    // Record the requirement and enforce the budget *before* materialising.
    ctx.check_size(predicted64)?;
    if items.len() > 62 {
        return Err(EvalError::PowersetOverflow {
            input_cardinality: items.len() as u64,
        });
    }
    let k = items.len();
    let mut subsets = Vec::with_capacity(1usize << k);
    for mask in 0u64..(1u64 << k) {
        // the canonical element order is preserved under subset selection
        let subset: Vec<VId> = items
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &e)| e)
            .collect();
        subsets.push(va.set_from_vec(subset));
    }
    Ok(va.set_from_vec(subsets))
}

/// Saturating binomial coefficient `C(n, k)` in `u128`.
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128);
        acc /= (i + 1) as u128;
        if acc == u128::MAX {
            return u128::MAX;
        }
    }
    acc
}

/// Predicted size of `powersetₘ({e₁,…,eₖ})`:
/// `1 + Σ_{i≤m} C(k,i) + (Σ_{i=1..m} C(k−1, i−1)) · Σᵢ size(eᵢ)`.
/// Saturating, like [`powerset_output_size`].
pub fn powerset_m_output_size(m: u64, elem_sizes: &[u64]) -> u128 {
    let k = elem_sizes.len() as u64;
    let sum = elem_sizes
        .iter()
        .fold(0u128, |acc, &s| acc.saturating_add(s as u128));
    let mut count: u128 = 0;
    for i in 0..=m.min(k) {
        count = count.saturating_add(binomial(k, i));
    }
    let mut per_elem: u128 = 0;
    if k > 0 {
        for i in 1..=m.min(k) {
            per_elem = per_elem.saturating_add(binomial(k - 1, i - 1));
        }
    }
    1u128
        .saturating_add(count)
        .saturating_add(per_elem.saturating_mul(sum))
}

fn eval_powerset_m_vid(
    m: u64,
    input: VId,
    ctx: &mut Ctx,
    va: &mut ValueArena,
) -> Result<VId, EvalError> {
    let items = va
        .as_set(input)
        .ok_or_else(|| stuck("powerset_m", "input is not a set"))?;
    let sizes: Vec<u64> = items.iter().map(|&v| va.size(v)).collect();
    let predicted = powerset_m_output_size(m, &sizes);
    let predicted64 = u64::try_from(predicted).unwrap_or(u64::MAX);
    ctx.check_size(predicted64)?;
    // Breadth-first by cardinality: level i holds the i-element subsets,
    // each a sorted handle vector (the canonical set representation).
    let mut all: Vec<VId> = vec![va.empty_set()];
    let mut level: BTreeSet<Vec<VId>> = BTreeSet::new();
    level.insert(Vec::new());
    for _ in 0..m.min(items.len() as u64) {
        let mut next: BTreeSet<Vec<VId>> = BTreeSet::new();
        for subset in &level {
            for &e in items.iter() {
                if let Err(pos) = subset.binary_search(&e) {
                    let mut bigger = subset.clone();
                    bigger.insert(pos, e);
                    next.insert(bigger);
                }
            }
        }
        for s in &next {
            all.push(va.set(s.iter().copied()));
        }
        level = next;
    }
    Ok(va.set(all))
}

// ---------------------------------------------------------------------------
// The tree-walking baseline (the original implementation).

/// The tree-path §3 rule set — used by [`evaluate_tree`] and by the
/// streaming evaluator's per-subset sub-evaluations (which must not
/// retain their transient inputs in the arena).
pub(crate) fn eval_in(expr: &Expr, input: &Value, ctx: &mut Ctx) -> Result<Value, EvalError> {
    ctx.node(expr.head_index())?;
    ctx.observe(input)?;
    let output = match expr {
        Expr::Tuple(f, g) => {
            let a = eval_in(f, input, ctx)?;
            let b = eval_in(g, input, ctx)?;
            Value::pair(a, b)
        }
        Expr::Map(f) => match input {
            Value::Set(items) => {
                let mut out = BTreeSet::new();
                for item in items {
                    out.insert(eval_in(f, item, ctx)?);
                }
                Value::Set(out)
            }
            _ => return Err(stuck("map", "input is not a set")),
        },
        Expr::Cond(c, then, els) => match eval_in(c, input, ctx)? {
            Value::Bool(true) => eval_in(then, input, ctx)?,
            Value::Bool(false) => eval_in(els, input, ctx)?,
            _ => return Err(stuck("if", "condition is not boolean")),
        },
        Expr::Compose(g, f) => {
            let mid = eval_in(f, input, ctx)?;
            eval_in(g, &mid, ctx)?
        }
        Expr::While(f) => {
            let mut current = input.clone();
            let mut iterations: u64 = 0;
            loop {
                let next = eval_in(f, &current, ctx)?;
                iterations += 1;
                ctx.stats.while_iterations += 1;
                if next == current {
                    break current;
                }
                if iterations >= ctx.config.max_while_iters {
                    return Err(EvalError::WhileDiverged { iterations });
                }
                current = next;
            }
        }
        leaf => apply_leaf(leaf, input, ctx)?,
    };
    ctx.observe(&output)?;
    Ok(output)
}

/// Apply a non-recursive primitive on the tree path.
fn apply_leaf(expr: &Expr, input: &Value, ctx: &mut Ctx) -> Result<Value, EvalError> {
    let output = match expr {
        Expr::Id => input.clone(),
        Expr::Bang => Value::Unit,
        Expr::Fst => match input {
            Value::Pair(a, _) => (**a).clone(),
            _ => return Err(stuck("fst", "input is not a pair")),
        },
        Expr::Snd => match input {
            Value::Pair(_, b) => (**b).clone(),
            _ => return Err(stuck("snd", "input is not a pair")),
        },
        Expr::Sng => Value::set([input.clone()]),
        Expr::Flatten => match input {
            Value::Set(sets) => {
                let mut out = BTreeSet::new();
                for s in sets {
                    match s {
                        Value::Set(inner) => out.extend(inner.iter().cloned()),
                        _ => return Err(stuck("flatten", "element is not a set")),
                    }
                }
                Value::Set(out)
            }
            _ => return Err(stuck("flatten", "input is not a set")),
        },
        Expr::PairWith => match input {
            Value::Pair(x, s) => match &**s {
                Value::Set(items) => {
                    Value::set(items.iter().map(|y| Value::pair((**x).clone(), y.clone())))
                }
                _ => return Err(stuck("pairwith", "second component is not a set")),
            },
            _ => return Err(stuck("pairwith", "input is not a pair")),
        },
        Expr::EmptySet(_) => Value::empty_set(),
        Expr::Union => match input {
            Value::Pair(a, b) => match (&**a, &**b) {
                (Value::Set(x), Value::Set(y)) => {
                    let mut out = x.clone();
                    out.extend(y.iter().cloned());
                    Value::Set(out)
                }
                _ => return Err(stuck("union", "components are not sets")),
            },
            _ => return Err(stuck("union", "input is not a pair")),
        },
        Expr::EqNat => match input {
            Value::Pair(a, b) => match (&**a, &**b) {
                (Value::Nat(x), Value::Nat(y)) => Value::Bool(x == y),
                _ => return Err(stuck("eq", "components are not naturals")),
            },
            _ => return Err(stuck("eq", "input is not a pair")),
        },
        Expr::IsEmpty => match input {
            Value::Set(items) => Value::Bool(items.is_empty()),
            _ => return Err(stuck("isempty", "input is not a set")),
        },
        Expr::ConstTrue => Value::Bool(true),
        Expr::ConstFalse => Value::Bool(false),
        Expr::Powerset => eval_powerset(input, ctx)?,
        Expr::PowersetM(m) => eval_powerset_m(*m, input, ctx)?,
        Expr::Const(v, _) => v.clone(),
        Expr::Tuple(..) | Expr::Map(_) | Expr::Cond(..) | Expr::Compose(..) | Expr::While(_) => {
            unreachable!("apply_leaf called on a recursive construct")
        }
    };
    Ok(output)
}

fn eval_powerset(input: &Value, ctx: &mut Ctx) -> Result<Value, EvalError> {
    let items = match input {
        Value::Set(items) => items,
        _ => return Err(stuck("powerset", "input is not a set")),
    };
    let elems: Vec<&Value> = items.iter().collect();
    let sizes: Vec<u64> = elems.iter().map(|v| v.size()).collect();
    let predicted = powerset_output_size(&sizes);
    let predicted64 = u64::try_from(predicted).unwrap_or(u64::MAX);
    // Record the requirement and enforce the budget *before* materialising.
    ctx.check_size(predicted64)?;
    if elems.len() > 62 {
        return Err(EvalError::PowersetOverflow {
            input_cardinality: elems.len() as u64,
        });
    }
    let k = elems.len();
    let mut subsets = BTreeSet::new();
    for mask in 0u64..(1u64 << k) {
        let mut subset = BTreeSet::new();
        for (i, e) in elems.iter().enumerate() {
            if mask & (1 << i) != 0 {
                subset.insert((*e).clone());
            }
        }
        subsets.insert(Value::Set(subset));
    }
    Ok(Value::Set(subsets))
}

fn eval_powerset_m(m: u64, input: &Value, ctx: &mut Ctx) -> Result<Value, EvalError> {
    let items = match input {
        Value::Set(items) => items,
        _ => return Err(stuck("powerset_m", "input is not a set")),
    };
    let sizes: Vec<u64> = items.iter().map(|v| v.size()).collect();
    let predicted = powerset_m_output_size(m, &sizes);
    let predicted64 = u64::try_from(predicted).unwrap_or(u64::MAX);
    ctx.check_size(predicted64)?;
    // Breadth-first by cardinality: level i holds the i-element subsets.
    let mut all: BTreeSet<Value> = BTreeSet::new();
    let mut level: BTreeSet<BTreeSet<Value>> = BTreeSet::new();
    level.insert(BTreeSet::new());
    all.insert(Value::Set(BTreeSet::new()));
    for _ in 0..m.min(items.len() as u64) {
        let mut next: BTreeSet<BTreeSet<Value>> = BTreeSet::new();
        for subset in &level {
            for e in items {
                if !subset.contains(e) {
                    let mut bigger = subset.clone();
                    bigger.insert(e.clone());
                    next.insert(bigger);
                }
            }
        }
        for s in &next {
            all.insert(Value::Set(s.clone()));
        }
        level = next;
    }
    Ok(Value::Set(all))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_core::builder::*;
    use nra_core::types::Type;

    fn run(e: &Expr, v: &Value) -> Value {
        eval(e, v).unwrap()
    }

    #[test]
    fn primitives_follow_the_rules() {
        let r2 = Value::chain(2);
        assert_eq!(run(&id(), &r2), r2);
        assert_eq!(run(&bang(), &r2), Value::Unit);
        assert_eq!(
            run(&tuple(id(), bang()), &Value::nat(3)),
            Value::pair(Value::nat(3), Value::Unit)
        );
        let p = Value::pair(Value::nat(1), Value::nat(2));
        assert_eq!(run(&fst(), &p), Value::nat(1));
        assert_eq!(run(&snd(), &p), Value::nat(2));
        assert_eq!(run(&sng(), &Value::nat(5)), Value::set([Value::nat(5)]));
        assert_eq!(
            run(
                &flatten(),
                &Value::set([Value::set([Value::nat(1)]), Value::set([Value::nat(2)])])
            ),
            Value::set([Value::nat(1), Value::nat(2)])
        );
        assert_eq!(run(&empty_set(Type::Nat), &Value::Unit), Value::empty_set());
        assert_eq!(run(&eq_nat(), &Value::edge(3, 3)), Value::TRUE);
        assert_eq!(run(&eq_nat(), &Value::edge(3, 4)), Value::FALSE);
        assert_eq!(run(&is_empty(), &Value::empty_set()), Value::TRUE);
        assert_eq!(run(&is_empty(), &r2), Value::FALSE);
        assert_eq!(run(&tru(), &Value::Unit), Value::TRUE);
        assert_eq!(run(&fls(), &Value::Unit), Value::FALSE);
    }

    #[test]
    fn pairwith_spreads_the_left_component() {
        let input = Value::pair(Value::nat(9), Value::set([Value::nat(1), Value::nat(2)]));
        assert_eq!(run(&pairwith(), &input), Value::relation([(9, 1), (9, 2)]));
    }

    #[test]
    fn union_and_map() {
        let input = Value::pair(Value::chain(1), Value::relation([(5, 6)]));
        assert_eq!(run(&union(), &input), Value::relation([(0, 1), (5, 6)]));
        // map(π₂) over the chain
        assert_eq!(
            run(&map(snd()), &Value::chain(3)),
            Value::set([Value::nat(1), Value::nat(2), Value::nat(3)])
        );
    }

    #[test]
    fn map_may_merge_equal_images() {
        // map(!) collapses everything to {()}
        assert_eq!(
            run(&map(bang()), &Value::chain(5)),
            Value::set([Value::Unit])
        );
    }

    #[test]
    fn cond_branches() {
        let f = cond(is_empty(), always_true(), always_false());
        assert_eq!(run(&f, &Value::empty_set()), Value::TRUE);
        assert_eq!(run(&f, &Value::chain(1)), Value::FALSE);
    }

    #[test]
    fn compose_applies_right_first() {
        // flatten ∘ map(sng) = id on sets
        let f = compose(flatten(), map(sng()));
        let v = Value::chain(4);
        assert_eq!(run(&f, &v), v);
    }

    #[test]
    fn powerset_of_small_sets() {
        let out = run(&powerset(), &Value::set([Value::nat(1), Value::nat(2)]));
        let subsets = out.as_set().unwrap();
        assert_eq!(subsets.len(), 4);
        assert!(subsets.contains(&Value::empty_set()));
        assert!(subsets.contains(&Value::set([Value::nat(1), Value::nat(2)])));
        // powerset(∅) = {∅}
        let out = run(&powerset(), &Value::empty_set());
        assert_eq!(out, Value::set([Value::empty_set()]));
    }

    #[test]
    fn powerset_size_prediction_matches_reality() {
        for k in 0..6 {
            let v = Value::set((0..k).map(Value::nat));
            let sizes: Vec<u64> = (0..k).map(|_| 1).collect();
            let predicted = powerset_output_size(&sizes) as u64;
            let actual = run(&powerset(), &v).size();
            assert_eq!(predicted, actual, "k = {k}");
        }
        // with non-atomic elements too
        let v = Value::chain(4);
        let sizes: Vec<u64> = v.as_set().unwrap().iter().map(Value::size).collect();
        assert_eq!(
            powerset_output_size(&sizes) as u64,
            run(&powerset(), &v).size()
        );
    }

    #[test]
    fn powerset_m_matches_full_powerset_when_m_is_large() {
        let v = Value::set((0..4).map(Value::nat));
        let full = run(&powerset(), &v);
        let approx = run(&powerset_m_prim(4), &v);
        assert_eq!(full, approx);
        let approx5 = run(&powerset_m_prim(50), &v);
        assert_eq!(full, approx5);
    }

    #[test]
    fn powerset_m_counts_binomials() {
        let v = Value::set((0..5).map(Value::nat));
        // C(5,0)+C(5,1)+C(5,2) = 1+5+10 = 16
        let out = run(&powerset_m_prim(2), &v);
        assert_eq!(out.cardinality(), Some(16));
        let sizes = [1u64; 5];
        assert_eq!(powerset_m_output_size(2, &sizes) as u64, out.size());
    }

    #[test]
    fn powerset_m_zero_is_singleton_empty() {
        let v = Value::chain(3);
        assert_eq!(
            run(&powerset_m_prim(0), &v),
            Value::set([Value::empty_set()])
        );
    }

    #[test]
    fn while_reaches_fixpoints() {
        // while(id) terminates immediately
        let f = while_fix(id());
        let v = Value::chain(3);
        assert_eq!(run(&f, &v), v);
    }

    #[test]
    fn while_diverges_cleanly() {
        // exercise the iteration cap with a tiny cap and a two-step
        // convergence
        let step = compose(union(), tuple(id(), compose(map(fst()), self_prod())));
        let cfg = EvalConfig {
            max_while_iters: 1,
            ..EvalConfig::default()
        };
        let ev = evaluate(&while_fix(step), &Value::chain(3), &cfg);
        assert!(matches!(
            ev.result,
            Err(EvalError::WhileDiverged { .. }) | Ok(_)
        ));
    }

    fn self_prod() -> Expr {
        nra_core::derived::self_product()
    }

    #[test]
    fn budget_cuts_powerset_before_materialising() {
        let cfg = EvalConfig::with_space_budget(1000);
        let big = Value::set((0..40).map(Value::nat)); // 2^40 subsets
        let ev = evaluate(&powerset(), &big, &cfg);
        match ev.result {
            Err(EvalError::SpaceBudgetExceeded { required, budget }) => {
                assert_eq!(budget, 1000);
                assert!(required > 1u64 << 40);
            }
            other => panic!("expected budget error, got {:?}", other),
        }
        // stats still carry the prediction as the complexity
        assert!(ev.stats.max_object_size > 1u64 << 40);
    }

    #[test]
    fn node_budget() {
        let cfg = EvalConfig {
            max_nodes: Some(3),
            ..EvalConfig::default()
        };
        let f = compose(map(sng()), compose(map(sng()), map(sng())));
        let ev = evaluate(&f, &Value::chain(5), &cfg);
        assert!(matches!(
            ev.result,
            Err(EvalError::NodeBudgetExceeded { .. })
        ));
    }

    #[test]
    fn stuck_on_ill_shaped_input() {
        assert!(matches!(
            eval(&fst(), &Value::nat(1)),
            Err(EvalError::Stuck { rule: "fst", .. })
        ));
        assert!(matches!(
            eval(&flatten(), &Value::chain(1)),
            Err(EvalError::Stuck {
                rule: "flatten",
                ..
            })
        ));
    }

    #[test]
    fn stats_track_the_derivation() {
        let f = compose(flatten(), map(sng()));
        let ev = evaluate(&f, &Value::chain(2), &EvalConfig::default());
        assert!(ev.result.is_ok());
        // compose + map + flatten + 2 × sng = 5 nodes
        assert_eq!(ev.stats.nodes, 5);
        assert_eq!(ev.stats.rule_counts["sng"], 2);
        // the chain r₂ itself (size 7) dominates… its singleton wrapping {{(0,1)},{(1,2)}} has size 9
        assert_eq!(ev.stats.max_object_size, 9);
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 6), 0);
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(60, 30), 118264581564861424);
    }

    #[test]
    fn const_returns_its_value() {
        let f = konst(Value::chain(2), Type::nat_rel());
        assert_eq!(run(&f, &Value::Unit), Value::chain(2));
    }

    #[test]
    fn tree_and_interned_paths_agree_on_results_and_stats() {
        let cfg = EvalConfig::default();
        let corpus: Vec<(Expr, Value)> = vec![
            (nra_core::queries::tc_paths(), Value::chain(5)),
            (nra_core::queries::tc_while(), Value::chain(6)),
            (nra_core::queries::tc_step(), Value::chain(4)),
            (nra_core::queries::siblings_powerset(), Value::chain(4)),
            (compose(flatten(), map(sng())), Value::chain(3)),
            (powerset(), Value::set((0..4).map(Value::nat))),
            (powerset_m_prim(2), Value::chain(4)),
        ];
        for (q, input) in &corpus {
            let tree = evaluate_tree(q, input, &cfg);
            let interned = evaluate(q, input, &cfg);
            assert_eq!(
                tree.result.as_ref().unwrap(),
                interned.result.as_ref().unwrap(),
                "{q}"
            );
            assert_eq!(tree.stats, interned.stats, "{q}");
        }
    }

    #[test]
    fn memoised_path_agrees_with_unmemoised_on_the_corpus() {
        let cfg = EvalConfig::default();
        let memo_cfg = EvalConfig::memoised();
        let corpus: Vec<(Expr, Value)> = vec![
            (nra_core::queries::tc_paths(), Value::chain(5)),
            (nra_core::queries::tc_while(), Value::chain(6)),
            (nra_core::queries::tc_step(), Value::chain(4)),
            (nra_core::queries::siblings_powerset(), Value::chain(4)),
            (compose(flatten(), map(sng())), Value::chain(3)),
            (powerset(), Value::set((0..4).map(Value::nat))),
            (powerset_m_prim(2), Value::chain(4)),
        ];
        for (q, input) in &corpus {
            let plain = evaluate(q, input, &cfg);
            let memoised = evaluate(q, input, &memo_cfg);
            assert_eq!(
                plain.result.as_ref().unwrap(),
                memoised.result.as_ref().unwrap(),
                "{q}"
            );
            // hits are reported separately, never inflating the §3 counters
            assert!(memoised.stats.nodes <= plain.stats.nodes, "{q}");
            assert_eq!(
                memoised.stats.max_object_size, plain.stats.max_object_size,
                "{q}"
            );
            assert_eq!(plain.stats.memo_hits + plain.stats.memo_misses, 0, "{q}");
        }
        // the while route re-applies its body to largely-shared sets: the
        // cache must actually fire there
        let ev = evaluate(&nra_core::queries::tc_while(), &Value::chain(6), &memo_cfg);
        assert!(ev.stats.memo_hits > 0);
        assert!(ev.stats.memo_hit_rate() > 0.0 && ev.stats.memo_hit_rate() < 1.0);
    }

    #[test]
    fn evaluate_vid_stays_on_handles() {
        use nra_core::value::intern;
        let input = intern::chain(5);
        let ev = evaluate_vid(
            &nra_core::queries::tc_while(),
            input,
            &EvalConfig::default(),
        );
        assert_eq!(ev.result.unwrap(), intern::chain_tc(5));
    }

    #[test]
    fn powerset_size_prediction_saturates() {
        // sizes near u64::MAX must saturate, not wrap
        let sizes = [u64::MAX, u64::MAX, 7];
        let p = powerset_output_size(&sizes);
        assert!(p >= u64::MAX as u128);
        let pm = powerset_m_output_size(2, &sizes);
        assert!(pm >= u64::MAX as u128);
        // and through the evaluator the u64 report pins at u64::MAX: a
        // 63-element set of atoms already predicts > 2⁶³
        let big = Value::set((0..63).map(Value::nat));
        let ev = evaluate(
            &nra_core::builder::powerset(),
            &big,
            // above the input's own size (64), far below the prediction
            &EvalConfig::with_space_budget(1000),
        );
        match ev.result {
            Err(EvalError::SpaceBudgetExceeded { required, .. }) => {
                assert!(required > 1u64 << 62);
            }
            other => panic!("expected budget error, got {other:?}"),
        }
    }
}
