//! Structural recognition of the *type-parameterised* Prop 2.1 derived
//! shapes over interned expression nodes.
//!
//! The monomorphic derived terms (`cartprod`, `unnest`) are recognised by
//! handle equality: hash-consing gives every occurrence the same `EId`.
//! Equality-at-a-type, membership, inclusion and `nest` cannot be — each
//! type instantiation interns to a different handle — so the semi-naive
//! walker matches their combinator skeletons structurally instead:
//!
//! * `eq_at(t)` — the type-directed grammar of [`nra_core::derived::eq_at`]
//!   (`=_N`; constantly-true at `unit`; the biconditional at `B`;
//!   componentwise at products; antisymmetric inclusion at sets);
//! * `member(t) = ¬empty ∘ σ_{=ₜ} ∘ ρ₂`;
//! * `subset(t) = empty ∘ σ_{¬∈} ∘ ρ₁`;
//! * `nest(s,t) = map(⟨π₁, image⟩) ∘ ρ₁ ∘ ⟨map(π₁), id⟩`.
//!
//! A match is exact — every leaf of the skeleton is verified — and the
//! matchers return the **type the skeleton witnesses** (`eq_at`'s
//! grammar is type-directed, so the term determines it uniquely). The
//! fused rules in [`crate::eager`] are then free to run the direct
//! arena operation (binary-search membership, merge-scan inclusion,
//! one-pass grouping) — but only after [`value_conforms`] confirms the
//! *runtime* input fits that type: on ill-typed inputs the derived
//! terms have observable behaviour of their own (`=ₜ` gets stuck on a
//! shape mismatch; `=_unit` is constantly true on *anything*), and the
//! bit-for-bit contract requires falling back to the ordinary
//! derivation there. Verdicts are memoised per `EId` (and conformance
//! per `(EId, VId)`) in [`ShapeCaches`], which the cache state
//! invalidates whenever handles could have been reissued.

use nra_core::expr::intern::{EId, ENode};
use nra_core::expr::Expr;
use nra_core::types::Type;
use nra_core::value::intern::{FxBuildHasher, VId, ValueArena};
use std::collections::HashMap;

/// Memoised recognition verdicts (`EId` → the witnessed type, `None`
/// for a non-match) plus per-`(shape, value)` conformance verdicts.
/// Owned by the walker's cache state and cleared with it.
#[derive(Default)]
pub(crate) struct ShapeCaches {
    eq_ats: HashMap<EId, Option<Type>, FxBuildHasher>,
    members: HashMap<EId, Option<Type>, FxBuildHasher>,
    subsets: HashMap<EId, Option<Type>, FxBuildHasher>,
    nests: HashMap<EId, Option<Type>, FxBuildHasher>,
    /// Conformance verdicts for the fused rules' runtime gate, keyed
    /// `(shape EId, value VId)` — the type is fixed per shape, and
    /// hash-consing makes the per-element checks of a growing set
    /// amortise to its fresh elements.
    conforms: HashMap<(EId, VId), bool, FxBuildHasher>,
}

impl ShapeCaches {
    /// Forget every verdict (the handles backing them may be stale).
    pub(crate) fn clear(&mut self) {
        self.eq_ats.clear();
        self.members.clear();
        self.subsets.clear();
        self.nests.clear();
        self.conforms.clear();
    }
}

/// Does the interned value structurally conform to `t`? Exactly the
/// judgement under which the derived `=ₜ` is total *and* coincides with
/// structural (= handle) equality.
pub(crate) fn value_conforms(va: &ValueArena, v: VId, t: &Type) -> bool {
    match t {
        Type::Unit => va.is_unit(v),
        Type::Bool => va.as_bool(v).is_some(),
        Type::Nat => va.as_nat(v).is_some(),
        Type::Prod(a, b) => match va.as_pair(v) {
            Some((x, y)) => value_conforms(va, x, a) && value_conforms(va, y, b),
            None => false,
        },
        Type::Set(elem) => match va.as_set(v) {
            Some(items) => items.iter().all(|&item| value_conforms(va, item, elem)),
            None => false,
        },
    }
}

/// [`value_conforms`] memoised per `(shape, value)` — `eid` must be the
/// shape whose witnessed type `t` is (the cache key stands in for the
/// type).
pub(crate) fn conforms_cached(
    caches: &mut ShapeCaches,
    va: &ValueArena,
    eid: EId,
    v: VId,
    t: &Type,
) -> bool {
    if let Some(&verdict) = caches.conforms.get(&(eid, v)) {
        return verdict;
    }
    let verdict = value_conforms(va, v, t);
    caches.conforms.insert((eid, v), verdict);
    verdict
}

/// Is `eid` the given non-recursive primitive?
fn leaf_is(nodes: &[ENode], eid: EId, expr: &Expr) -> bool {
    matches!(&nodes[eid.index()], ENode::Leaf(l) if **l == *expr)
}

/// `true ∘ !` / `false ∘ !` — the constant booleans at any domain.
fn is_always(nodes: &[ENode], eid: EId, value: bool) -> bool {
    let ENode::Compose(g, f) = nodes[eid.index()] else {
        return false;
    };
    let konst = if value {
        Expr::ConstTrue
    } else {
        Expr::ConstFalse
    };
    leaf_is(nodes, g, &konst) && leaf_is(nodes, f, &Expr::Bang)
}

/// `¬ = if id then false else true`.
fn is_not(nodes: &[ENode], eid: EId) -> bool {
    let ENode::Cond(c, t, e) = nodes[eid.index()] else {
        return false;
    };
    leaf_is(nodes, c, &Expr::Id) && is_always(nodes, t, false) && is_always(nodes, e, true)
}

/// `∧ = if π₁ then π₂ else false` — the strict-left conjunction `pand`
/// builds on.
fn is_and2(nodes: &[ENode], eid: EId) -> bool {
    let ENode::Cond(c, t, e) = nodes[eid.index()] else {
        return false;
    };
    leaf_is(nodes, c, &Expr::Fst) && leaf_is(nodes, t, &Expr::Snd) && is_always(nodes, e, false)
}

/// `nonempty = ¬ ∘ empty`.
fn is_nonempty(nodes: &[ENode], eid: EId) -> bool {
    let ENode::Compose(g, f) = nodes[eid.index()] else {
        return false;
    };
    is_not(nodes, g) && leaf_is(nodes, f, &Expr::IsEmpty)
}

/// `swap = ⟨π₂, π₁⟩`.
fn is_swap(nodes: &[ENode], eid: EId) -> bool {
    let ENode::Tuple(a, b) = nodes[eid.index()] else {
        return false;
    };
    leaf_is(nodes, a, &Expr::Snd) && leaf_is(nodes, b, &Expr::Fst)
}

/// `ρ₁ = map(swap) ∘ ρ₂ ∘ swap`.
fn is_rho1(nodes: &[ENode], eid: EId) -> bool {
    let ENode::Compose(g, f) = nodes[eid.index()] else {
        return false;
    };
    let ENode::Map(sw) = nodes[g.index()] else {
        return false;
    };
    if !is_swap(nodes, sw) {
        return false;
    }
    let ENode::Compose(pw, sw2) = nodes[f.index()] else {
        return false;
    };
    leaf_is(nodes, pw, &Expr::PairWith) && is_swap(nodes, sw2)
}

/// `σ_p = μ ∘ map(if p then η else ∅ˢ ∘ !)` — returns the predicate.
fn select_shape(nodes: &[ENode], eid: EId) -> Option<EId> {
    let ENode::Compose(g, f) = nodes[eid.index()] else {
        return None;
    };
    if !leaf_is(nodes, g, &Expr::Flatten) {
        return None;
    }
    let ENode::Map(b) = nodes[f.index()] else {
        return None;
    };
    let ENode::Cond(p, t, e) = nodes[b.index()] else {
        return None;
    };
    if !leaf_is(nodes, t, &Expr::Sng) {
        return None;
    }
    let ENode::Compose(es, bg) = nodes[e.index()] else {
        return None;
    };
    let ENode::Leaf(ref el) = nodes[es.index()] else {
        return None;
    };
    (matches!(**el, Expr::EmptySet(_)) && leaf_is(nodes, bg, &Expr::Bang)).then_some(p)
}

/// `⟨πₒ ∘ π₁, πₒ ∘ π₂⟩` with `πₒ = π₁` (`second = false`, the left
/// components of a pair of pairs) or `πₒ = π₂` (the right components) —
/// the coordinate re-wiring of componentwise equality at products.
fn is_proj_tuple(nodes: &[ENode], eid: EId, second: bool) -> bool {
    let outer = if second { Expr::Snd } else { Expr::Fst };
    let ENode::Tuple(x, y) = nodes[eid.index()] else {
        return false;
    };
    let left = matches!(nodes[x.index()], ENode::Compose(g, f)
        if leaf_is(nodes, g, &outer) && leaf_is(nodes, f, &Expr::Fst));
    let right = matches!(nodes[y.index()], ENode::Compose(g, f)
        if leaf_is(nodes, g, &outer) && leaf_is(nodes, f, &Expr::Snd));
    left && right
}

/// Is `eid` the Prop 2.1 equality `=ₜ`? Returns the witnessed `t` —
/// the type-directed grammar determines it uniquely, and the fused
/// rules need it for their runtime conformance gate.
pub(crate) fn eq_at_type(eid: EId, nodes: &[ENode], caches: &mut ShapeCaches) -> Option<Type> {
    if let Some(verdict) = caches.eq_ats.get(&eid) {
        return verdict.clone();
    }
    let verdict = compute_eq_at(eid, nodes, caches);
    caches.eq_ats.insert(eid, verdict.clone());
    verdict
}

fn compute_eq_at(eid: EId, nodes: &[ENode], caches: &mut ShapeCaches) -> Option<Type> {
    match &nodes[eid.index()] {
        // =_N, the primitive
        ENode::Leaf(l) if **l == Expr::EqNat => Some(Type::Nat),
        // =_B = if π₁ then π₂ else ¬π₂
        ENode::Cond(c, t, e) => (leaf_is(nodes, *c, &Expr::Fst)
            && leaf_is(nodes, *t, &Expr::Snd)
            && matches!(nodes[e.index()], ENode::Compose(n, s)
                    if is_not(nodes, n) && leaf_is(nodes, s, &Expr::Snd)))
        .then_some(Type::Bool),
        ENode::Compose(g, f) => {
            // =_unit = true ∘ !
            if leaf_is(nodes, *g, &Expr::ConstTrue) && leaf_is(nodes, *f, &Expr::Bang) {
                return Some(Type::Unit);
            }
            // the two pand cases: ∧ ∘ ⟨p, q⟩
            if !is_and2(nodes, *g) {
                return None;
            }
            let ENode::Tuple(p, q) = nodes[f.index()] else {
                return None;
            };
            // =_{s×t}: componentwise
            if let (ENode::Compose(ea, pa), ENode::Compose(eb, pb)) =
                (&nodes[p.index()], &nodes[q.index()])
            {
                if is_proj_tuple(nodes, *pa, false) && is_proj_tuple(nodes, *pb, true) {
                    if let (Some(ta), Some(tb)) = (
                        eq_at_type(*ea, nodes, caches),
                        eq_at_type(*eb, nodes, caches),
                    ) {
                        return Some(Type::prod(ta, tb));
                    }
                }
            }
            // =_{ {t} }: ⊆ ∧ ⊇
            if let Some(elem) = subset_elem_type(p, nodes, caches) {
                if let ENode::Compose(sub, sw) = nodes[q.index()] {
                    if is_swap(nodes, sw)
                        && subset_elem_type(sub, nodes, caches) == Some(elem.clone())
                    {
                        return Some(Type::set(elem));
                    }
                }
            }
            None
        }
        _ => None,
    }
}

/// Is `eid` the Prop 2.1 membership `∈ = ¬empty ∘ σ_{=ₜ} ∘ ρ₂`?
/// Returns the witnessed element type `t`.
pub(crate) fn member_elem_type(
    eid: EId,
    nodes: &[ENode],
    caches: &mut ShapeCaches,
) -> Option<Type> {
    if let Some(verdict) = caches.members.get(&eid) {
        return verdict.clone();
    }
    let verdict = (|| {
        let ENode::Compose(g, f) = nodes[eid.index()] else {
            return None;
        };
        if !is_nonempty(nodes, g) {
            return None;
        }
        let ENode::Compose(sel, pw) = nodes[f.index()] else {
            return None;
        };
        if !leaf_is(nodes, pw, &Expr::PairWith) {
            return None;
        }
        eq_at_type(select_shape(nodes, sel)?, nodes, caches)
    })();
    caches.members.insert(eid, verdict.clone());
    verdict
}

/// Is `eid` the Prop 2.1 inclusion `⊆ = empty ∘ σ_{¬∈} ∘ ρ₁`? Returns
/// the witnessed element type `t`.
pub(crate) fn subset_elem_type(
    eid: EId,
    nodes: &[ENode],
    caches: &mut ShapeCaches,
) -> Option<Type> {
    if let Some(verdict) = caches.subsets.get(&eid) {
        return verdict.clone();
    }
    let verdict = (|| {
        let ENode::Compose(g, f) = nodes[eid.index()] else {
            return None;
        };
        if !leaf_is(nodes, g, &Expr::IsEmpty) {
            return None;
        }
        let ENode::Compose(sel, r1) = nodes[f.index()] else {
            return None;
        };
        if !is_rho1(nodes, r1) {
            return None;
        }
        let pred = select_shape(nodes, sel)?;
        // ¬∈ = ¬ ∘ member
        let ENode::Compose(n, m) = nodes[pred.index()] else {
            return None;
        };
        if !is_not(nodes, n) {
            return None;
        }
        member_elem_type(m, nodes, caches)
    })();
    caches.subsets.insert(eid, verdict.clone());
    verdict
}

/// Is `eid` the Prop 2.1 grouping
/// `nest = map(⟨π₁, image⟩) ∘ ρ₁ ∘ ⟨map(π₁), id⟩`, with
/// `image = map(π₂ ∘ π₂) ∘ σ_{same key} ∘ ρ₂` and
/// `same key = =ₛ ∘ ⟨π₁, π₁ ∘ π₂⟩`? Returns the witnessed key type `s`.
pub(crate) fn nest_key_type(eid: EId, nodes: &[ENode], caches: &mut ShapeCaches) -> Option<Type> {
    if let Some(verdict) = caches.nests.get(&eid) {
        return verdict.clone();
    }
    let verdict = (|| {
        let ENode::Compose(g, f) = nodes[eid.index()] else {
            return None;
        };
        // head: map(⟨π₁, image⟩)
        let ENode::Map(body) = nodes[g.index()] else {
            return None;
        };
        let ENode::Tuple(first, image) = nodes[body.index()] else {
            return None;
        };
        if !leaf_is(nodes, first, &Expr::Fst) {
            return None;
        }
        // image = map(π₂ ∘ π₂) ∘ (σ_{same key} ∘ ρ₂)
        let ENode::Compose(mp, inner) = nodes[image.index()] else {
            return None;
        };
        let ENode::Map(sndsnd) = nodes[mp.index()] else {
            return None;
        };
        if !matches!(nodes[sndsnd.index()], ENode::Compose(a, b)
            if leaf_is(nodes, a, &Expr::Snd) && leaf_is(nodes, b, &Expr::Snd))
        {
            return None;
        }
        let ENode::Compose(sel, pw) = nodes[inner.index()] else {
            return None;
        };
        if !leaf_is(nodes, pw, &Expr::PairWith) {
            return None;
        }
        let same_key = select_shape(nodes, sel)?;
        let ENode::Compose(eq, keyproj) = nodes[same_key.index()] else {
            return None;
        };
        let key_type = eq_at_type(eq, nodes, caches)?;
        let ENode::Tuple(k1, k2) = nodes[keyproj.index()] else {
            return None;
        };
        if !leaf_is(nodes, k1, &Expr::Fst) {
            return None;
        }
        if !matches!(nodes[k2.index()], ENode::Compose(a, b)
            if leaf_is(nodes, a, &Expr::Fst) && leaf_is(nodes, b, &Expr::Snd))
        {
            return None;
        }
        // tail: ρ₁ ∘ ⟨map(π₁), id⟩
        let ENode::Compose(r1, t) = nodes[f.index()] else {
            return None;
        };
        if !is_rho1(nodes, r1) {
            return None;
        }
        let ENode::Tuple(mf, idl) = nodes[t.index()] else {
            return None;
        };
        let ENode::Map(ff) = nodes[mf.index()] else {
            return None;
        };
        (leaf_is(nodes, ff, &Expr::Fst) && leaf_is(nodes, idl, &Expr::Id)).then_some(key_type)
    })();
    caches.nests.insert(eid, verdict.clone());
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_core::builder::*;
    use nra_core::derived;
    use nra_core::expr::intern::ExprArena;
    use nra_core::types::Type;

    fn recognise(e: &Expr) -> (EId, Vec<ENode>, ShapeCaches) {
        let mut arena = ExprArena::new();
        let eid = arena.intern(e);
        (eid, arena.snapshot(), ShapeCaches::default())
    }

    #[test]
    fn eq_at_matches_every_type_instantiation() {
        for t in [
            Type::Nat,
            Type::Unit,
            Type::Bool,
            Type::prod(Type::Nat, Type::Bool),
            Type::nat_rel(),
            Type::set(Type::nat_rel()),
            Type::prod(Type::nat_rel(), Type::set(Type::Nat)),
        ] {
            let (eid, nodes, mut caches) = recognise(&derived::eq_at(&t));
            assert_eq!(
                eq_at_type(eid, &nodes, &mut caches),
                Some(t.clone()),
                "eq_at({t})"
            );
        }
        // near-misses must not match
        for e in [neq_nat_like(), id(), compose(eq_nat(), swap())] {
            let (eid, nodes, mut caches) = recognise(&e);
            assert_eq!(eq_at_type(eid, &nodes, &mut caches), None, "{e}");
        }
    }

    fn neq_nat_like() -> Expr {
        derived::pnot(eq_nat())
    }

    #[test]
    fn member_and_subset_match_their_skeletons() {
        for t in [Type::Nat, Type::nat_rel(), Type::set(Type::Nat)] {
            let (eid, nodes, mut caches) = recognise(&derived::member(&t));
            assert_eq!(
                member_elem_type(eid, &nodes, &mut caches),
                Some(t.clone()),
                "member at {t}"
            );
            let (eid, nodes, mut caches) = recognise(&derived::subset(&t));
            assert_eq!(
                subset_elem_type(eid, &nodes, &mut caches),
                Some(t.clone()),
                "subset at {t}"
            );
        }
        // a selection that is not a membership test must not match
        let sel = derived::select(always_true(), Type::Nat);
        let (eid, nodes, mut caches) = recognise(&sel);
        assert_eq!(member_elem_type(eid, &nodes, &mut caches), None);
        assert_eq!(subset_elem_type(eid, &nodes, &mut caches), None);
    }

    #[test]
    fn nest_matches_and_near_misses_do_not() {
        for (s, t) in [
            (Type::Nat, Type::Nat),
            (Type::Nat, Type::Bool),
            (Type::prod(Type::Nat, Type::Nat), Type::Nat),
        ] {
            let (eid, nodes, mut caches) = recognise(&derived::nest(&s, &t));
            assert_eq!(
                nest_key_type(eid, &nodes, &mut caches),
                Some(s.clone()),
                "nest({s}, {t})"
            );
        }
        let (eid, nodes, mut caches) = recognise(&derived::unnest());
        assert_eq!(nest_key_type(eid, &nodes, &mut caches), None);
    }

    #[test]
    fn verdicts_are_memoised() {
        let t = Type::set(Type::nat_rel());
        let (eid, nodes, mut caches) = recognise(&derived::eq_at(&t));
        assert_eq!(eq_at_type(eid, &nodes, &mut caches), Some(t.clone()));
        assert_eq!(caches.eq_ats.get(&eid), Some(&Some(t)));
        // the set-equality grammar recurses through ⊆, whose verdicts
        // land in the subset cache as a side effect
        assert!(caches.subsets.values().any(|v| v.is_some()));
        caches.clear();
        assert!(caches.eq_ats.is_empty() && caches.subsets.is_empty());
    }

    #[test]
    fn conformance_follows_the_type_structure() {
        use nra_core::value::intern::ValueArena;
        let mut a = ValueArena::new();
        let unit = a.unit();
        let yes = a.bool_(true);
        let three = a.nat(3);
        let pair = a.pair(three, yes);
        let rel = a.chain(2);
        assert!(value_conforms(&a, unit, &Type::Unit));
        assert!(!value_conforms(&a, three, &Type::Unit));
        assert!(value_conforms(&a, yes, &Type::Bool));
        assert!(value_conforms(&a, three, &Type::Nat));
        assert!(!value_conforms(&a, yes, &Type::Nat));
        assert!(value_conforms(&a, pair, &Type::prod(Type::Nat, Type::Bool)));
        assert!(!value_conforms(
            &a,
            pair,
            &Type::prod(Type::Bool, Type::Nat)
        ));
        assert!(value_conforms(&a, rel, &Type::nat_rel()));
        assert!(!value_conforms(&a, rel, &Type::set(Type::Nat)));
    }
}
