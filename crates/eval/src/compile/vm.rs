//! The register VM that executes a compiled [`Program`].
//!
//! [`run`] is an explicit-frame interpreter of the flat instruction
//! stream: calls push heap frames instead of recursing (so arbitrarily
//! deep `Compose` spines cannot overflow the native stack), registers
//! are one flat `VId` file, and every instruction's runtime effect is
//! the *operation-for-operation* image of the corresponding step of
//! [`eval_eid`](crate::eager::eval_eid):
//!
//! * [`Inst::Call`] probes the **same shared apply cache** with the
//!   identically stamped `(EId, VId)` key, counts the hit/miss and
//!   charges a hit's recorded cost exactly as the interpreter's entry
//!   does; [`Inst::Ret`] stores the judgment against the frame's cost
//!   window exactly as the interpreter's exit does;
//! * the cost window restarts where the interpreter restarts it — at
//!   the generic-body prologue ([`Inst::Enter`]/[`Inst::Leaf`]/
//!   [`Inst::FlattenDelta`]), *after* a fused attempt, so a fused
//!   success stores against the call-time window (`fused_start`) and a
//!   generic completion stores against the prologue window
//!   (`cost_start`), bit-for-bit the interpreter's accounting;
//! * fused superinstructions call the *same* `eval_*_fused` rule
//!   bodies, the leaf/flatten instructions the same leaf rules, and
//!   the `map`/`while` blocks replicate the delta-cache and
//!   `(total, delta)` threading of the semi-naive rules — so
//!   [`EvalStats`](crate::stats::EvalStats), §3 rule counters and
//!   `while_iterations` come out identical under every configuration;
//! * [`Inst::MapIter`] additionally collapses the per-element
//!   cursor/call/collect protocol: elements whose judgment is already
//!   cached are counted, charged and collected in a tight loop without
//!   touching the dispatcher, which is where the VM beats the
//!   interpreter on hit-heavy fixpoint workloads.

use super::{FusedKind, Inst, Program};
use crate::eager::{
    delta_probe, eval_cartprod_fused, eval_flatten_delta, eval_leaf_rule, eval_member_fused,
    eval_nest_fused, eval_projeq_fused, eval_projpair_fused, eval_select_fused, eval_subset_fused,
    eval_unnest_fused, record_frontier, stuck, Caches, Ctx, DeltaEntry, MemoCache,
};
use crate::error::EvalError;
use nra_core::expr::intern::ENode;
use nra_core::value::intern::{VId, ValueArena};
use std::sync::Arc;

/// One activation record: where to resume, which apply-cache key to
/// store against, the *caller's* cost window saved across the call
/// (the machine keeps the currently open window in a local and
/// restores it from here on return), and the caller's destination
/// register.
struct Frame {
    ret_pc: usize,
    key: u64,
    cost_start: u64,
    dst: u32,
}

/// In-flight state of one `map` iteration block — the element cursor,
/// the collected images, whether a body call is in flight (its image
/// waits in the [`Inst::MapIter`] scratch register), and the
/// semi-naive bookkeeping the closing [`Inst::MapEnd`] folds into the
/// delta cache.
struct MapState {
    items: Arc<[VId]>,
    idx: usize,
    images: Vec<VId>,
    input: VId,
    merge_prev: Option<VId>,
    pending: bool,
    cost_start: u64,
}

/// Sentinel return pc of the root frame: popping it halts the machine
/// with the result.
const HALT: usize = usize::MAX;

/// Execute `program` on `input`. The caller supplies the same synced
/// node snapshot, caches and value arena an interpreted evaluation
/// would — the VM only replaces the dispatch, never the rules.
pub(crate) fn run(
    program: &Program,
    input: VId,
    ctx: &mut Ctx,
    nodes: &[ENode],
    caches: &mut Caches,
    va: &mut ValueArena,
) -> Result<VId, EvalError> {
    debug_assert_eq!(program.memo, ctx.config.memo, "program/config drift");
    debug_assert_eq!(
        program.semi_naive, ctx.config.semi_naive,
        "program/config drift"
    );
    let memo = ctx.config.memo;
    let mut regs: Vec<VId> = vec![VId::from_index(0); program.regs as usize];
    let mut frames: Vec<Frame> = Vec::with_capacity(16);
    let empty: Arc<[VId]> = Arc::from(Vec::new());
    let mut map_states: Vec<MapState> = (0..program.map_slots)
        .map(|_| MapState {
            items: Arc::clone(&empty),
            idx: 0,
            images: Vec::new(),
            input: VId::from_index(0),
            merge_prev: None,
            pending: false,
            cost_start: 0,
        })
        .collect();
    let mut while_iters: Vec<u64> = vec![0; program.while_slots as usize];

    // the root call, inlined: probe, and on a miss open the halting frame
    let root_key = MemoCache::key(program.root, input);
    if memo {
        if let Some((out, cost, warm)) = caches.memo.probe(root_key) {
            ctx.stats.memo_hits += 1;
            if warm {
                ctx.stats.warm_hits += 1;
            }
            ctx.charge(cost)?;
            return Ok(out);
        }
        ctx.stats.memo_misses += 1;
    }
    frames.push(Frame {
        ret_pc: HALT,
        key: root_key,
        cost_start: 0,
        dst: 0,
    });
    regs[program.root_in as usize] = input;
    let mut pc = program.entry as usize;
    // the currently open cost window: opened at call time, restarted by
    // the generic-body prologues, restored from the frame on return
    let mut cost_start = ctx.charged_nodes;

    // return protocol, shared by `ret` and a fused success: store the
    // judgment against the open cost window, halt on the root frame,
    // otherwise deliver the result, restore the caller's window and
    // resume
    macro_rules! do_ret {
        ($out:expr) => {{
            let out = $out;
            let frame = frames.pop().expect("return without an open frame");
            if memo {
                caches
                    .memo
                    .store(frame.key, out, ctx.charged_nodes - cost_start);
            }
            if frame.ret_pc == HALT {
                return Ok(out);
            }
            cost_start = frame.cost_start;
            regs[frame.dst as usize] = out;
            pc = frame.ret_pc;
        }};
    }

    loop {
        match program.insts[pc] {
            Inst::Call {
                eid,
                entry,
                arg,
                src,
                dst,
            } => {
                let a = regs[src as usize];
                let key = MemoCache::key(eid, a);
                if memo {
                    if let Some((out, cost, warm)) = caches.memo.probe(key) {
                        ctx.stats.memo_hits += 1;
                        if warm {
                            ctx.stats.warm_hits += 1;
                        }
                        ctx.charge(cost)?;
                        regs[dst as usize] = out;
                        pc += 1;
                        continue;
                    }
                    ctx.stats.memo_misses += 1;
                }
                frames.push(Frame {
                    ret_pc: pc + 1,
                    key,
                    cost_start,
                    dst,
                });
                cost_start = ctx.charged_nodes;
                regs[arg as usize] = a;
                pc = entry as usize;
            }
            Inst::CallLeaf { eid, src, dst } => {
                let a = regs[src as usize];
                let key = MemoCache::key(eid, a);
                if memo {
                    if let Some((out, cost, warm)) = caches.memo.probe(key) {
                        ctx.stats.memo_hits += 1;
                        if warm {
                            ctx.stats.warm_hits += 1;
                        }
                        ctx.charge(cost)?;
                        regs[dst as usize] = out;
                        pc += 1;
                        continue;
                    }
                    ctx.stats.memo_misses += 1;
                }
                // the leaf body inline: its own cost window opens here
                // and closes at the store — the caller's stays open in
                // `cost_start`, untouched, exactly as a frame round
                // trip would leave it
                let leaf_start = ctx.charged_nodes;
                let node = &nodes[eid.index()];
                ctx.node(node.head_index())?;
                let ENode::Leaf(leaf) = node else {
                    unreachable!("`call.leaf` instruction on a recursive node")
                };
                let out = eval_leaf_rule(leaf, a, ctx, va)?;
                if memo {
                    caches.memo.store(key, out, ctx.charged_nodes - leaf_start);
                }
                regs[dst as usize] = out;
                pc += 1;
            }
            Inst::LeafPair {
                e1,
                e2,
                src,
                mid,
                dst,
            } => {
                // the peephole fusion of a compose-of-leaves spine:
                // two `call.leaf` bodies back to back, each with the
                // identical probe/run/store protocol, both registers
                // written — bit-for-bit the unfused pair
                let mut a = regs[src as usize];
                for (eid, out_reg) in [(e1, mid), (e2, dst)] {
                    let key = MemoCache::key(eid, a);
                    if memo {
                        if let Some((out, cost, warm)) = caches.memo.probe(key) {
                            ctx.stats.memo_hits += 1;
                            if warm {
                                ctx.stats.warm_hits += 1;
                            }
                            ctx.charge(cost)?;
                            regs[out_reg as usize] = out;
                            a = out;
                            continue;
                        }
                        ctx.stats.memo_misses += 1;
                    }
                    let leaf_start = ctx.charged_nodes;
                    let node = &nodes[eid.index()];
                    ctx.node(node.head_index())?;
                    let ENode::Leaf(leaf) = node else {
                        unreachable!("`call.leaf2` instruction on a recursive node")
                    };
                    let out = eval_leaf_rule(leaf, a, ctx, va)?;
                    if memo {
                        caches.memo.store(key, out, ctx.charged_nodes - leaf_start);
                    }
                    regs[out_reg as usize] = out;
                    a = out;
                }
                pc += 1;
            }
            Inst::CallEnter {
                eid,
                entry,
                arg,
                src,
                dst,
                head,
            } => {
                let a = regs[src as usize];
                let key = MemoCache::key(eid, a);
                if memo {
                    if let Some((out, cost, warm)) = caches.memo.probe(key) {
                        ctx.stats.memo_hits += 1;
                        if warm {
                            ctx.stats.warm_hits += 1;
                        }
                        ctx.charge(cost)?;
                        regs[dst as usize] = out;
                        pc += 1;
                        continue;
                    }
                    ctx.stats.memo_misses += 1;
                }
                frames.push(Frame {
                    ret_pc: pc + 1,
                    key,
                    cost_start,
                    dst,
                });
                // the callee's `enter` prologue, folded into the miss
                // path: open its window, count the node, observe the
                // input, land past the prologue
                cost_start = ctx.charged_nodes;
                ctx.node(head as usize)?;
                ctx.observe_vid(va, a)?;
                regs[arg as usize] = a;
                pc = entry as usize;
            }
            Inst::Enter { head, src } => {
                cost_start = ctx.charged_nodes;
                ctx.node(head as usize)?;
                ctx.observe_vid(va, regs[src as usize])?;
                pc += 1;
            }
            Inst::Leaf { eid, src, dst } => {
                cost_start = ctx.charged_nodes;
                let node = &nodes[eid.index()];
                ctx.node(node.head_index())?;
                let ENode::Leaf(leaf) = node else {
                    unreachable!("`leaf` instruction on a recursive node")
                };
                regs[dst as usize] = eval_leaf_rule(leaf, regs[src as usize], ctx, va)?;
                pc += 1;
            }
            Inst::FlattenDelta { eid, src, dst } => {
                cost_start = ctx.charged_nodes;
                ctx.node(nodes[eid.index()].head_index())?;
                regs[dst as usize] = eval_flatten_delta(eid, regs[src as usize], ctx, caches, va)?;
                pc += 1;
            }
            Inst::Fused { kind, eid, src } => {
                let input = regs[src as usize];
                let fused = match kind {
                    FusedKind::Cartprod => eval_cartprod_fused(eid, input, ctx, caches, va)?,
                    FusedKind::Unnest => eval_unnest_fused(eid, input, ctx, caches, va)?,
                    FusedKind::Select(pred) => {
                        eval_select_fused(eid, pred, input, ctx, nodes, caches, va)?
                    }
                    FusedKind::ProjEq => eval_projeq_fused(eid, input, ctx, nodes, caches, va)?,
                    FusedKind::ProjPair => eval_projpair_fused(eid, input, ctx, nodes, caches, va)?,
                    FusedKind::Subset => eval_subset_fused(eid, input, ctx, nodes, caches, va)?,
                    FusedKind::Member => eval_member_fused(eid, input, ctx, nodes, caches, va)?,
                    FusedKind::Nest => eval_nest_fused(eid, input, ctx, nodes, caches, va)?,
                };
                match fused {
                    // a fused success returns with the *call-time* cost
                    // window still open — the interpreter's `fused_start`
                    Some(out) => do_ret!(out),
                    None => pc += 1,
                }
            }
            Inst::Pair { a, b, dst } => {
                regs[dst as usize] = va.pair(regs[a as usize], regs[b as usize]);
                pc += 1;
            }
            Inst::Branch { cond, els } => match va.as_bool(regs[cond as usize]) {
                Some(true) => pc += 1,
                Some(false) => pc = els as usize,
                None => return Err(stuck("if", "condition is not boolean")),
            },
            Inst::Jump { to } => pc = to as usize,
            Inst::WhileBegin { slot } => {
                while_iters[slot as usize] = 0;
                pc += 1;
            }
            Inst::WhileStep {
                slot,
                cur,
                next,
                back,
            } => {
                let iterations = &mut while_iters[slot as usize];
                *iterations += 1;
                ctx.stats.while_iterations += 1;
                let (c, n) = (regs[cur as usize], regs[next as usize]);
                record_frontier(ctx, va, c, n);
                if n == c {
                    pc += 1; // fixpoint: the result is already in `cur`
                } else if *iterations >= ctx.config.max_while_iters {
                    return Err(EvalError::WhileDiverged {
                        iterations: *iterations,
                    });
                } else {
                    regs[cur as usize] = n;
                    pc = back as usize;
                }
            }
            Inst::MapBegin { slot, eid, src } => {
                let input = regs[src as usize];
                let items = va
                    .as_set(input)
                    .ok_or_else(|| stuck("map", "input is not a set"))?;
                let state = &mut map_states[slot as usize];
                if ctx.config.semi_naive {
                    if let Some((prev_out, prev_cost, fresh)) =
                        delta_probe(eid, input, &caches.delta, va)
                    {
                        let fresh_items = va.as_set(fresh).expect("frontier is a set");
                        ctx.stats.delta_hits += 1;
                        ctx.stats.delta_skipped += (items.len() - fresh_items.len()) as u64;
                        let cost_start = ctx.charged_nodes;
                        ctx.charge(prev_cost)?;
                        *state = MapState {
                            images: Vec::with_capacity(fresh_items.len()),
                            items: fresh_items,
                            idx: 0,
                            input,
                            merge_prev: Some(prev_out),
                            pending: false,
                            cost_start,
                        };
                        pc += 1;
                        continue;
                    }
                }
                *state = MapState {
                    images: Vec::with_capacity(items.len()),
                    items,
                    idx: 0,
                    input,
                    merge_prev: None,
                    pending: false,
                    cost_start: ctx.charged_nodes,
                };
                pc += 1;
            }
            Inst::MapIter {
                slot,
                eid,
                entry,
                arg,
                ret,
            } => {
                let state = &mut map_states[slot as usize];
                if state.pending {
                    // a body call just returned: collect its image
                    state.pending = false;
                    state.images.push(regs[ret as usize]);
                }
                loop {
                    let state = &mut map_states[slot as usize];
                    if state.idx >= state.items.len() {
                        pc += 1; // exhausted: fall through to `map.end`
                        break;
                    }
                    let item = state.items[state.idx];
                    state.idx += 1;
                    let key = MemoCache::key(eid, item);
                    if memo {
                        // consume consecutive memoised elements right
                        // here — each hit is counted, charged and
                        // collected without re-entering the dispatcher
                        if let Some((out, cost, warm)) = caches.memo.probe(key) {
                            ctx.stats.memo_hits += 1;
                            if warm {
                                ctx.stats.warm_hits += 1;
                            }
                            ctx.charge(cost)?;
                            map_states[slot as usize].images.push(out);
                            continue;
                        }
                        ctx.stats.memo_misses += 1;
                    }
                    // miss: run the body routine; its `ret` lands back
                    // on this very instruction with `pending` set
                    map_states[slot as usize].pending = true;
                    frames.push(Frame {
                        ret_pc: pc,
                        key,
                        cost_start,
                        dst: ret,
                    });
                    cost_start = ctx.charged_nodes;
                    regs[arg as usize] = item;
                    pc = entry as usize;
                    break;
                }
            }
            Inst::MapEnd { slot, eid, dst } => {
                let state = &mut map_states[slot as usize];
                let images = std::mem::take(&mut state.images);
                let imgs = va.set_from_vec(images);
                let output = match state.merge_prev {
                    Some(prev_out) => va
                        .set_merge_frontier(prev_out, &[imgs])
                        .expect("map outputs are sets"),
                    None => imgs,
                };
                if ctx.config.semi_naive {
                    let cost = ctx.charged_nodes - state.cost_start;
                    caches.delta.insert(
                        eid,
                        DeltaEntry {
                            input: state.input,
                            output,
                            cost,
                        },
                    );
                }
                regs[dst as usize] = output;
                pc += 1;
            }
            Inst::Ret { src, observe } => {
                if observe {
                    ctx.observe_vid(va, regs[src as usize])?;
                }
                do_ret!(regs[src as usize])
            }
        }
    }
}
