//! Evaluation errors and resource budgets.
//!
//! The theorems predict that certain evaluations *need* exponential space.
//! Rather than letting those runs exhaust memory, the evaluator takes an
//! [`EvalConfig`] whose budgets turn "would need ≥ S space" into a clean
//! [`EvalError::SpaceBudgetExceeded`] carrying the offending size — for
//! `powerset` the size is *predicted combinatorially before materialising
//! anything*, so benches can measure complexities far beyond physical
//! memory.

use std::fmt;

/// Resource limits for one evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalConfig {
    /// Abort as soon as any object in the derivation tree would exceed
    /// this size (the paper's complexity measure). `None` = unlimited.
    pub max_object_size: Option<u64>,
    /// Abort after this many derivation-tree nodes. `None` = unlimited.
    pub max_nodes: Option<u64>,
    /// Iteration cap for the `while` extension (it is a genuine fixpoint
    /// loop, so divergence must be cut off).
    pub max_while_iters: u64,
    /// Enable the eager evaluator's **apply cache**: a memo table
    /// `(EId, VId) → VId` keyed on the interned expression and input.
    /// A hit returns the cached result handle in `O(1)` instead of
    /// re-running the §3 derivation — results are bit-for-bit identical
    /// to unmemoised evaluation, but the reported statistics are not
    /// the exact §3 accounting: a hit is counted in
    /// [`EvalStats::memo_hits`](crate::stats::EvalStats::memo_hits)
    /// *instead of* re-counting the skipped sub-derivation's nodes and
    /// observations. (A hit still *charges* the recorded cost of its
    /// cached subtree against [`EvalConfig::max_nodes`], so budget
    /// exhaustion is strategy-independent.) Keep this off (the default)
    /// when the statistics must be the exact eager measure.
    pub memo: bool,
    /// Enable **semi-naive (delta-driven) iteration**: `while` threads a
    /// `(total, delta)` pair through its iterates, and the pointwise set
    /// rules — `map` and `μ` (flatten) — evaluate only on the frontier
    /// (the elements their input gained since the same rule last fired),
    /// folding new facts into the previous result via the arena's
    /// one-pass merge algebra
    /// ([`set_merge_delta`](nra_core::value::intern::ValueArena::set_merge_delta),
    /// [`set_merge_frontier`](nra_core::value::intern::ValueArena::set_merge_frontier)).
    /// Because `map` and `μ` distribute over union element-by-element,
    /// the results are **bit-for-bit** the naive-iteration results for
    /// *every* body (both differential harnesses enforce this), and
    /// `while_iterations` stays exact; like a memo hit, a skipped
    /// sub-derivation is reported in
    /// [`EvalStats::delta_skipped`](crate::stats::EvalStats::delta_skipped)
    /// instead of inflating the §3 counters, while still charging its
    /// recorded cost against [`EvalConfig::max_nodes`].
    pub semi_naive: bool,
    /// Execute through the **compiled bytecode backend**
    /// ([`crate::compile`]): the hash-consed expression DAG is flattened
    /// once into a register-VM program (one routine per unique `EId`,
    /// structured blocks for `while`/`if`, fused superinstructions for
    /// the recognised Prop 2.1 shapes) and every evaluation runs the
    /// program instead of walking the tree interpretively. Results,
    /// [`EvalStats`](crate::stats::EvalStats), §3 rule counters and
    /// `while_iterations` are **bit-for-bit identical** to the
    /// interpreted strategies under the same `memo`/`semi_naive`
    /// switches (both differential harnesses enforce this); only the
    /// dispatch overhead changes. Compiled frames stamp the same
    /// `(EId, VId)` apply-cache keys, so warm starts and cross-worker
    /// sharing keep working.
    pub compiled: bool,
    /// Route every session query through the **rewrite pass** installed
    /// with [`EvalSession::set_rewriter`](crate::EvalSession::set_rewriter)
    /// before evaluation. The evaluator itself carries no rules — the
    /// pass is an injected [`RewritePass`](crate::RewritePass) closure
    /// (the `nra-opt` crate provides the real one), so the dependency
    /// arrow stays `opt → eval`. With the flag on but no pass installed
    /// the hook is the identity. Rewritten roots key the program cache
    /// and the apply cache on the *optimised* `EId`, so the compiled
    /// backend compiles the rewritten DAG.
    pub optimise: bool,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            max_object_size: None,
            max_nodes: None,
            max_while_iters: 100_000,
            memo: false,
            semi_naive: false,
            compiled: false,
            optimise: false,
        }
    }
}

impl EvalConfig {
    /// A config with the given space budget (in size units of §3).
    pub fn with_space_budget(budget: u64) -> Self {
        EvalConfig {
            max_object_size: Some(budget),
            ..EvalConfig::default()
        }
    }

    /// An unbudgeted config with the apply cache enabled — see
    /// [`EvalConfig::memo`].
    pub fn memoised() -> Self {
        EvalConfig {
            memo: true,
            ..EvalConfig::default()
        }
    }

    /// An unbudgeted config with semi-naive (delta-driven) `while`
    /// iteration enabled — see [`EvalConfig::semi_naive`]. Results are
    /// bit-for-bit the naive-iteration results; only the cost changes.
    ///
    /// ```
    /// use nra_core::{queries, Value};
    /// use nra_eval::{evaluate, EvalConfig};
    ///
    /// let input = Value::chain(6);
    /// let naive = evaluate(&queries::tc_while(), &input, &EvalConfig::default());
    /// let delta = evaluate(&queries::tc_while(), &input, &EvalConfig::semi_naive());
    /// // same closure, same fixpoint trajectory…
    /// assert_eq!(naive.result.unwrap(), delta.result.unwrap());
    /// assert_eq!(naive.stats.while_iterations, delta.stats.while_iterations);
    /// // …but the body ran on the frontier only: elements already mapped
    /// // in earlier iterates were folded in, not re-derived, so the §3
    /// // counters only ever shrink
    /// assert!(delta.stats.delta_skipped > 0);
    /// assert!(delta.stats.nodes < naive.stats.nodes);
    /// assert!(delta.stats.max_object_size <= naive.stats.max_object_size);
    /// ```
    pub fn semi_naive() -> Self {
        EvalConfig {
            semi_naive: true,
            ..EvalConfig::default()
        }
    }

    /// Everything on: the apply cache **and** semi-naive iteration —
    /// the configuration the benchmarks call "seminaive" (the delta
    /// rules skip whole repeated frontiers; the apply cache catches the
    /// repeats the delta rules cannot see).
    pub fn optimised() -> Self {
        EvalConfig {
            memo: true,
            semi_naive: true,
            ..EvalConfig::default()
        }
    }

    /// [`EvalConfig::optimised`] routed through the compiled bytecode
    /// backend — the apply cache, semi-naive iteration, *and* flat
    /// register-VM execution ([`EvalConfig::compiled`]). Results and
    /// statistics are bit-for-bit the [`EvalConfig::optimised`] ones;
    /// interpretive dispatch is retired from the hot path.
    ///
    /// ```
    /// use nra_core::{queries, Value};
    /// use nra_eval::{evaluate, EvalConfig};
    ///
    /// let input = Value::chain(6);
    /// let walked = evaluate(&queries::tc_while(), &input, &EvalConfig::optimised());
    /// let compiled = evaluate(&queries::tc_while(), &input, &EvalConfig::compiled());
    /// assert_eq!(walked.result.unwrap(), compiled.result.unwrap());
    /// assert_eq!(walked.stats, compiled.stats);
    /// ```
    pub fn compiled() -> Self {
        EvalConfig {
            compiled: true,
            ..EvalConfig::optimised()
        }
    }

    /// [`EvalConfig::compiled`] with the pre-evaluation **rewrite pass**
    /// switched on ([`EvalConfig::optimise`]) — the full stack: rule
    /// rewriting, apply cache, semi-naive iteration, bytecode execution.
    /// The pass only runs once a
    /// [`RewritePass`](crate::RewritePass) has been installed on the
    /// session (`nra_opt::install` does both).
    pub fn rewritten() -> Self {
        EvalConfig {
            optimise: true,
            ..EvalConfig::compiled()
        }
    }
}

/// Why an evaluation did not produce a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// An object of size `required` would occur in the derivation tree,
    /// exceeding the configured `budget`. For `powerset` outputs the
    /// required size is computed combinatorially without materialisation.
    SpaceBudgetExceeded {
        /// Size the evaluation would need.
        required: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The derivation tree grew beyond the configured node budget.
    NodeBudgetExceeded {
        /// The configured budget.
        budget: u64,
    },
    /// A `while` loop failed to reach a fixpoint within the iteration cap.
    WhileDiverged {
        /// Iterations performed before giving up.
        iterations: u64,
    },
    /// The input value did not match the shape a primitive requires
    /// (cannot happen for type-checked expressions; kept for defence).
    Stuck {
        /// The primitive that got stuck.
        rule: &'static str,
        /// Description of the shape mismatch.
        detail: String,
    },
    /// A `powerset` application whose result would not be addressable
    /// (more than 2⁶² subsets) was requested without a space budget.
    PowersetOverflow {
        /// Cardinality of the input set.
        input_cardinality: u64,
    },
    /// A [`crate::eval_batch`] worker panicked while evaluating this
    /// job (e.g. a stale fabricated handle). The panic is contained to
    /// the job: the other jobs of the batch still return their results.
    WorkerPanicked {
        /// The panic payload, when it was a string.
        detail: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::SpaceBudgetExceeded { required, budget } => write!(
                f,
                "space budget exceeded: an object of size {} would occur (budget {})",
                required, budget
            ),
            EvalError::NodeBudgetExceeded { budget } => {
                write!(f, "node budget exceeded ({} rule applications)", budget)
            }
            EvalError::WhileDiverged { iterations } => {
                write!(
                    f,
                    "while loop did not converge after {} iterations",
                    iterations
                )
            }
            EvalError::Stuck { rule, detail } => {
                write!(f, "evaluation stuck at `{}`: {}", rule, detail)
            }
            EvalError::PowersetOverflow { input_cardinality } => write!(
                f,
                "powerset of a {}-element set cannot be materialised",
                input_cardinality
            ),
            EvalError::WorkerPanicked { detail } => {
                write!(f, "batch worker panicked: {}", detail)
            }
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_unbounded_except_while() {
        let c = EvalConfig::default();
        assert_eq!(c.max_object_size, None);
        assert_eq!(c.max_nodes, None);
        assert!(c.max_while_iters > 0);
    }

    #[test]
    fn display_messages() {
        let e = EvalError::SpaceBudgetExceeded {
            required: 100,
            budget: 10,
        };
        assert!(e.to_string().contains("size 100"));
        let e = EvalError::WhileDiverged { iterations: 7 };
        assert!(e.to_string().contains('7'));
    }
}
