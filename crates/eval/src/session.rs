//! Explicit evaluation sessions: the owned engine layer over the
//! evaluators.
//!
//! The free functions of [`crate::eager`] / [`crate::trace`] /
//! [`crate::lazy`] run against *thread-local* arenas — convenient, but
//! one evaluation stream per thread, and the BDD-style apply cache opens
//! a fresh epoch on every call. An [`EvalSession`] lifts all of that
//! state into one owned value:
//!
//! * a [`ValueArena`] and an [`ExprArena`] (the §3 store of complex
//!   objects and the hash-consed expressions over it);
//! * the apply cache `(EId, VId) → VId` and the shape-recognition /
//!   delta caches of the cached walker;
//! * the [`EvalConfig`] every query of the session runs under.
//!
//! Owning the state buys three things:
//!
//! 1. **Cross-query warm starts** — the arenas *and* the apply cache
//!    survive across [`EvalSession::eval`] calls, so re-evaluating a
//!    query (or any query sharing judgments with an earlier one) hits
//!    cached derivations immediately. Warm activity is reported in
//!    [`EvalStats::warm_hits`](crate::stats::EvalStats::warm_hits) and
//!    aggregated in [`SessionStats`].
//! 2. **Bounded residency** — [`EvalSession::set_resident_budget`]
//!    installs an `approx_resident_bytes` ceiling; when a query boundary
//!    finds the session above it, the session **evicts**: both arenas
//!    and the cache state are cleared and [`EvalSession::generation`]
//!    is bumped (all previously issued handles go stale — the
//!    tree-boundary [`EvalSession::eval`] is immune, handle-level
//!    callers must re-intern). Eviction never changes results, only
//!    cache hit counters — a property test holds this.
//! 3. **Parallelism** — `EvalSession` is `Send` (handles travel with
//!    their arena), so sessions can move across threads, and
//!    [`crate::batch`] fans a batch of queries across N worker sessions.
//!
//! The free functions remain as a thin thread-local-backed compatibility
//! facade; nothing on the evaluator hot path touches a thread-local when
//! a session is supplied.
//!
//! ```
//! use nra_core::{queries, Value};
//! use nra_eval::{EvalConfig, EvalSession};
//!
//! let mut session = EvalSession::new(EvalConfig::optimised());
//! let input = Value::chain(6);
//! let cold = session.eval(&queries::tc_while(), &input);
//! let warm = session.eval(&queries::tc_while(), &input);
//! assert_eq!(cold.result.unwrap(), warm.result.unwrap());
//! // the second call found the whole judgment in the surviving cache
//! assert!(warm.stats.warm_hits > 0);
//! assert!(session.stats().warm_hits > 0);
//! ```

use crate::eager::{self, Ctx, Evaluation, MemoState, VidEvaluation};
use crate::error::EvalConfig;
use crate::lazy::{self, LazyEvaluation};
use crate::trace::{self, TracedEvaluation};
use nra_core::expr::intern::{EId, ExprArena};
use nra_core::value::intern::{VId, ValueArena};
use nra_core::value::Value;
use nra_core::Expr;
use std::collections::HashMap;
use std::sync::Arc;

/// An injected pre-evaluation rewrite pass: given the session's
/// expression arena and a root, return the (possibly identical) root to
/// evaluate instead. The evaluator owns no rules — `nra-opt` provides
/// the real pass (`nra_opt::pass()`), keeping the dependency arrow
/// `opt → eval`. The closure must be pure up to interning: it may grow
/// the arena but must return a handle valid in it, and equal inputs must
/// give equal outputs (the session memoises per root `EId`).
pub type RewritePass = Arc<dyn Fn(&mut ExprArena, EId) -> EId + Send + Sync>;

/// Aggregate counters of one session, accumulated across its queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries evaluated through this session (any strategy).
    pub queries: u64,
    /// Apply-cache hits summed over all queries.
    pub memo_hits: u64,
    /// Apply-cache misses summed over all queries.
    pub memo_misses: u64,
    /// The subset of `memo_hits` served **across** queries — entries
    /// written by an earlier `eval` of this session. The cross-query
    /// warm-start counter.
    pub warm_hits: u64,
    /// Generation-based evictions performed (resident budget exceeded).
    pub evictions: u64,
}

/// An owned evaluation context: arenas, apply cache, and configuration —
/// see the [module docs](self).
pub struct EvalSession {
    values: ValueArena,
    exprs: ExprArena,
    memo: MemoState,
    config: EvalConfig,
    stats: SessionStats,
    resident_budget: Option<usize>,
    generation: u64,
    /// The injected rewrite pass, when one is installed — see
    /// [`RewritePass`]. Only consulted when [`EvalConfig::optimise`] is
    /// set.
    rewriter: Option<RewritePass>,
    /// Memoised `root → rewritten root` per generation (cleared on
    /// eviction along with the arenas whose handles it holds).
    rewrites: HashMap<EId, EId>,
}

impl EvalSession {
    /// A fresh session evaluating under `config`. For warm starts across
    /// queries, use a config with the apply cache on
    /// ([`EvalConfig::memoised`] or [`EvalConfig::optimised`]); the
    /// arenas warm-start regardless.
    pub fn new(config: EvalConfig) -> Self {
        let mut exprs = ExprArena::new();
        let memo = MemoState::new(&mut exprs);
        EvalSession {
            values: ValueArena::new(),
            exprs,
            memo,
            config,
            stats: SessionStats::default(),
            resident_budget: None,
            generation: 0,
            rewriter: None,
            rewrites: HashMap::new(),
        }
    }

    /// [`EvalSession::new`] with a resident-byte budget installed — see
    /// [`EvalSession::set_resident_budget`].
    pub fn with_resident_budget(config: EvalConfig, bytes: usize) -> Self {
        let mut session = EvalSession::new(config);
        session.set_resident_budget(Some(bytes));
        session
    }

    /// Migrate this session onto the **shared concurrent store**:
    /// lock-striped intern tables for both arenas plus one lock-striped
    /// apply table, all behind `Arc`s. Idempotent; every previously
    /// issued handle stays valid (the migration preserves indices), and
    /// results are bit-for-bit unaffected — interning stays canonical,
    /// so the same structure gets the same handle no matter which
    /// session (or thread) interns it first.
    ///
    /// This is what [`EvalSession::split`] (and through it
    /// [`crate::eval_batch`]) builds worker sessions on: workers intern
    /// into the *same* canonical store and probe the *same* apply
    /// table, so one worker's derivation is every worker's warm hit.
    pub fn make_shared(&mut self) {
        self.values.make_shared();
        self.exprs.make_shared();
        self.memo.make_shared();
    }

    /// Whether this session runs on the shared concurrent store.
    pub fn is_shared(&self) -> bool {
        self.values.is_shared()
    }

    /// Split off `workers` sessions over this session's shared store
    /// (migrating it via [`EvalSession::make_shared`] first if needed).
    ///
    /// Each returned session interns into the **same** canonical
    /// value/expression store and probes the **same** apply table as
    /// the parent — handles issued by any of them are valid in all of
    /// them — but owns its private recognition/delta caches, its own
    /// [`SessionStats`], and no resident budget (the parent enforces
    /// its budget at batch boundaries instead; see [`crate::eval_batch`]).
    pub fn split(&mut self, workers: usize) -> Vec<EvalSession> {
        self.make_shared();
        let table = self
            .memo
            .shared_table()
            .expect("make_shared installed a shared apply table");
        (0..workers)
            .map(|_| {
                let values = self
                    .values
                    .shared_clone()
                    .expect("make_shared installed a shared value store");
                let mut exprs = self
                    .exprs
                    .shared_clone()
                    .expect("make_shared installed a shared expression store");
                let memo = MemoState::with_shared_table(&mut exprs, Arc::clone(&table));
                EvalSession {
                    values,
                    exprs,
                    memo,
                    config: self.config.clone(),
                    stats: SessionStats::default(),
                    resident_budget: None,
                    generation: self.generation,
                    rewriter: self.rewriter.clone(),
                    rewrites: HashMap::new(),
                }
            })
            .collect()
    }

    /// Install (or remove) the pre-evaluation rewrite pass — see
    /// [`RewritePass`]. The pass runs at [`EvalSession::eval`] /
    /// [`EvalSession::eval_vid`] boundaries when
    /// [`EvalConfig::optimise`] is set; worker sessions produced by
    /// [`EvalSession::split`] inherit it. Installing a pass clears the
    /// per-root rewrite memo.
    pub fn set_rewriter(&mut self, pass: Option<RewritePass>) {
        self.rewriter = pass;
        self.rewrites.clear();
    }

    /// The root actually evaluated for `eid`: the rewrite pass's output
    /// when [`EvalConfig::optimise`] is on and a pass is installed, `eid`
    /// itself otherwise. Memoised per root within a generation, so the
    /// rules run once per distinct query — warm re-evaluations pay one
    /// hash lookup. The returned handle is what the program cache and
    /// the apply cache are keyed on.
    pub fn optimise_eid(&mut self, eid: EId) -> EId {
        if !self.config.optimise {
            return eid;
        }
        let Some(pass) = self.rewriter.clone() else {
            return eid;
        };
        if let Some(&done) = self.rewrites.get(&eid) {
            return done;
        }
        let out = pass(&mut self.exprs, eid);
        self.rewrites.insert(eid, out);
        out
    }

    /// Install (or remove) the occupancy ceiling. At every
    /// [`EvalSession::eval`] / [`EvalSession::eval_lazy`] /
    /// [`EvalSession::trace`] boundary where
    /// [`EvalSession::approx_resident_bytes`] exceeds the budget, the
    /// session [evicts](EvalSession::evict).
    pub fn set_resident_budget(&mut self, bytes: Option<usize>) {
        self.resident_budget = bytes;
    }

    /// The configuration every query of this session runs under.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Aggregate counters accumulated so far.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// The eviction generation: bumped exactly when previously issued
    /// [`VId`]/[`EId`] handles went stale. Within one generation, the
    /// arenas only grow and [`EvalSession::approx_resident_bytes`] is
    /// monotone over successful queries.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The session's value arena (read access for resolving, occupancy
    /// inspection, merge-algebra reads).
    pub fn values(&self) -> &ValueArena {
        &self.values
    }

    /// Mutable access to the value arena — for callers that build inputs
    /// handle-by-handle before [`EvalSession::eval_vid`].
    pub fn values_mut(&mut self) -> &mut ValueArena {
        &mut self.values
    }

    /// The session's expression arena.
    pub fn exprs(&self) -> &ExprArena {
        &self.exprs
    }

    /// Intern a tree value into this session's arena.
    pub fn intern_value(&mut self, v: &Value) -> VId {
        self.values.intern(v)
    }

    /// Intern an expression into this session's arena.
    pub fn intern_expr(&mut self, e: &Expr) -> EId {
        self.exprs.intern(e)
    }

    /// Materialise the tree form of a session handle.
    pub fn resolve(&self, v: VId) -> Value {
        self.values.resolve(v)
    }

    /// Approximate bytes resident in this session: both arenas plus the
    /// retained cache state. Monotone within one generation; drops at
    /// eviction.
    pub fn approx_resident_bytes(&self) -> usize {
        self.values.approx_resident_bytes()
            + self.exprs.node_count() * std::mem::size_of::<nra_core::expr::intern::ENode>()
            + self.memo.approx_resident_bytes()
    }

    /// Evaluate `expr` on a tree `input` — the evict-safe boundary:
    /// input is interned on entry, the result resolved on exit, so the
    /// caller never holds session handles across a possible eviction.
    pub fn eval(&mut self, expr: &Expr, input: &Value) -> Evaluation {
        let eid = self.exprs.intern(expr);
        let iv = self.values.intern(input);
        let ev = self.eval_vid(eid, iv);
        let result = ev.result.map(|out| self.values.resolve(out));
        self.maybe_evict();
        Evaluation {
            result,
            stats: ev.stats,
        }
    }

    /// Evaluate entirely on session handles (`eid` and `input` must have
    /// been issued by *this* session in its *current* generation). No
    /// eviction happens inside this call — the returned handle is valid
    /// until the next tree-boundary query triggers one.
    pub fn eval_vid(&mut self, eid: EId, input: VId) -> VidEvaluation {
        debug_assert!(
            eid.index() < self.exprs.node_count() && input.index() < self.values.len(),
            "stale handle: eval_vid called with EId {} / VId {} but this session's arenas hold \
             only {} expressions / {} values — the handle predates an eviction (generation is \
             now {}); re-intern through the current arenas",
            eid.index(),
            input.index(),
            self.exprs.node_count(),
            self.values.len(),
            self.generation,
        );
        // rewrite before the query opens: the (possibly new) root is what
        // the program cache compiles and the apply cache keys on
        let eid = self.optimise_eid(eid);
        self.memo.begin_query(&mut self.exprs, true);
        let mut ctx = Ctx::new(&self.config);
        let (dense_ops0, dense_promotions0) = self.values.dense_counters();
        let result = if self.config.compiled {
            // compile once per (root, switches) within a generation,
            // execute the flat program on this and every warm re-eval
            let program = self.memo.program(eid, &self.config);
            let MemoState { nodes, caches, .. } = &mut self.memo;
            crate::compile::vm::run(&program, input, &mut ctx, nodes, caches, &mut self.values)
        } else {
            let MemoState { nodes, caches, .. } = &mut self.memo;
            eager::eval_eid(eid, input, &mut ctx, nodes, caches, &mut self.values)
        };
        let mut stats = ctx.finish();
        let (dense_ops1, dense_promotions1) = self.values.dense_counters();
        stats.dense_ops = dense_ops1 - dense_ops0;
        stats.dense_promotions = dense_promotions1 - dense_promotions0;
        self.absorb(&stats);
        VidEvaluation { result, stats }
    }

    /// The compiled bytecode program this session executes for `eid`
    /// under its current configuration — compiled (and cached) on first
    /// request, shared with every subsequent
    /// [`EvalSession::eval_vid`] on the same root. This is the
    /// inspection entry point behind the `--disasm` tooling and
    /// `examples/bytecode_compile.rs`; render it with
    /// [`crate::compile::disassemble`].
    pub fn compiled_program(&mut self, eid: EId) -> std::sync::Arc<crate::compile::Program> {
        let eid = self.optimise_eid(eid);
        self.memo.begin_query(&mut self.exprs, true);
        self.memo.program(eid, &self.config)
    }

    /// [`EvalSession::eval_vid`] under a per-call space budget: the
    /// effective `max_object_size` is the minimum of `max_object_size`
    /// and the session's configured one, restored afterwards. `None`
    /// is exactly `eval_vid`. This is how a batch job's *declared
    /// budget* ([`crate::batch::BatchJob`]) is enforced by the engine
    /// rather than audited after the fact — an overrun surfaces as
    /// [`EvalError::SpaceBudgetExceeded`](crate::EvalError::SpaceBudgetExceeded)
    /// carrying the exact requirement. Budgets never change results,
    /// only whether the evaluation is cut off.
    pub fn eval_vid_budgeted(
        &mut self,
        eid: EId,
        input: VId,
        max_object_size: Option<u64>,
    ) -> VidEvaluation {
        let Some(budget) = max_object_size else {
            return self.eval_vid(eid, input);
        };
        let saved = self.config.max_object_size;
        self.config.max_object_size = Some(saved.map_or(budget, |s| s.min(budget)));
        let ev = self.eval_vid(eid, input);
        self.config.max_object_size = saved;
        ev
    }

    /// Evaluate under the streaming (lazy) strategy — the session-owned
    /// counterpart of [`crate::evaluate_lazy`]; the apply cache warms
    /// across calls exactly as for [`EvalSession::eval`].
    pub fn eval_lazy(&mut self, expr: &Expr, input: &Value) -> LazyEvaluation {
        let iv = self.values.intern(input);
        let state = if self.config.memo || self.config.semi_naive {
            self.memo.begin_query(&mut self.exprs, true);
            Some(&mut self.memo)
        } else {
            None
        };
        let ev = lazy::lazy_eval_with(
            expr,
            iv,
            &self.config,
            &mut self.values,
            &mut self.exprs,
            state,
        );
        self.stats.queries += 1;
        self.stats.memo_hits += ev.stats.memo_hits;
        self.stats.memo_misses += ev.stats.memo_misses;
        self.stats.warm_hits += ev.stats.warm_hits;
        let result = ev.result.map(|out| self.values.resolve(out));
        self.maybe_evict();
        LazyEvaluation {
            result,
            stats: ev.stats,
        }
    }

    /// Evaluate while materialising the derivation tree — the
    /// session-owned counterpart of [`crate::evaluate_traced`].
    pub fn trace(&mut self, expr: &Expr, input: &Value) -> TracedEvaluation {
        let ev = trace::trace_with(expr, input, &self.config, &mut self.exprs, &mut self.values);
        self.absorb(&ev.stats);
        self.maybe_evict();
        ev
    }

    /// Force an eviction now: clear both arenas and the cache state,
    /// bump the generation, count it. **All handles issued by this
    /// session become invalid.** Results of subsequent queries are
    /// unaffected — only cache hit counters change (cold restart).
    pub fn evict(&mut self) {
        self.values.clear();
        self.exprs.clear();
        self.memo.evict();
        self.rewrites.clear();
        self.memo.begin_query(&mut self.exprs, false);
        self.generation += 1;
        self.stats.evictions += 1;
    }

    fn maybe_evict(&mut self) {
        if self.over_budget() {
            self.evict();
        }
    }

    /// Whether the installed resident budget (if any) is currently
    /// exceeded — the batch layer checks this at its own boundary.
    pub(crate) fn over_budget(&self) -> bool {
        self.resident_budget
            .is_some_and(|budget| self.approx_resident_bytes() > budget)
    }

    pub(crate) fn absorb(&mut self, stats: &crate::stats::EvalStats) {
        self.stats.queries += 1;
        self.stats.memo_hits += stats.memo_hits;
        self.stats.memo_misses += stats.memo_misses;
        self.stats.warm_hits += stats.warm_hits;
    }
}

impl std::fmt::Debug for EvalSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalSession")
            .field("generation", &self.generation)
            .field("values", &self.values.node_count())
            .field("exprs", &self.exprs.node_count())
            .field("approx_resident_bytes", &self.approx_resident_bytes())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_core::queries;

    // the tentpole's thread-mobility contract, checked at compile time
    const _: fn() = || {
        fn assert_send<T: Send>() {}
        assert_send::<EvalSession>();
    };

    #[test]
    fn session_agrees_with_the_facade() {
        for config in [
            EvalConfig::default(),
            EvalConfig::memoised(),
            EvalConfig::semi_naive(),
            EvalConfig::optimised(),
        ] {
            let mut session = EvalSession::new(config.clone());
            for n in 0..6u64 {
                let input = Value::chain(n);
                for q in [queries::tc_while(), queries::tc_step(), queries::tc_paths()] {
                    let facade = crate::evaluate(&q, &input, &config);
                    let owned = session.eval(&q, &input);
                    assert_eq!(
                        facade.result.unwrap(),
                        owned.result.unwrap(),
                        "{q} n={n} (session vs facade)"
                    );
                }
            }
        }
    }

    #[test]
    fn warm_start_hits_on_reevaluation() {
        let mut session = EvalSession::new(EvalConfig::optimised());
        let input = Value::chain(8);
        let cold = session.eval(&queries::tc_while(), &input);
        assert_eq!(cold.stats.warm_hits, 0, "first query cannot be warm");
        let warm = session.eval(&queries::tc_while(), &input);
        assert_eq!(cold.result.unwrap(), warm.result.unwrap());
        assert!(warm.stats.memo_hits > 0);
        assert!(warm.stats.warm_hits > 0, "{:?}", warm.stats);
        assert_eq!(session.stats().queries, 2);
        assert!(session.stats().warm_hits > 0);
    }

    #[test]
    fn facade_never_reports_warm_hits() {
        let input = Value::chain(6);
        for _ in 0..3 {
            let ev = crate::evaluate(&queries::tc_while(), &input, &EvalConfig::optimised());
            assert_eq!(ev.stats.warm_hits, 0);
        }
    }

    #[test]
    fn eviction_resets_generation_and_counters() {
        // a budget of one byte forces an eviction after every query
        let mut session = EvalSession::with_resident_budget(EvalConfig::optimised(), 1);
        let input = Value::chain(5);
        let first = session.eval(&queries::tc_while(), &input);
        assert_eq!(session.generation(), 1);
        assert_eq!(session.stats().evictions, 1);
        let second = session.eval(&queries::tc_while(), &input);
        assert_eq!(first.result.unwrap(), second.result.unwrap());
        assert_eq!(second.stats.warm_hits, 0, "evicted cache cannot be warm");
        assert_eq!(session.generation(), 2);
    }

    #[test]
    fn lazy_and_trace_run_on_the_session() {
        let mut session = EvalSession::new(EvalConfig::optimised());
        let input = Value::chain(5);
        let lazy = session.eval_lazy(&queries::tc_paths(), &input);
        assert_eq!(lazy.result.unwrap(), Value::chain_tc(5));
        let traced = session.trace(&queries::tc_step(), &input);
        let plain = crate::evaluate(&queries::tc_step(), &input, &EvalConfig::default());
        assert_eq!(traced.result.unwrap().output, plain.result.unwrap());
        assert_eq!(session.stats().queries, 2);
    }

    #[test]
    fn handle_level_evaluation_round_trips() {
        let mut session = EvalSession::new(EvalConfig::default());
        let eid = session.intern_expr(&queries::tc_while());
        let input = session.values_mut().chain(5);
        let ev = session.eval_vid(eid, input);
        let expect = session.values_mut().chain_tc(5);
        assert_eq!(ev.result.unwrap(), expect, "O(1) handle equality");
    }
}
