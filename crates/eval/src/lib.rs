//! # nra-eval
//!
//! The eager natural-semantics evaluator of §3 of Suciu & Paredaens (1994),
//! instrumented with the paper's complexity measure, plus two companions:
//!
//! * [`eager`] — the rule-per-rule evaluator; [`eager::evaluate`] returns
//!   the result together with [`stats::EvalStats`], whose
//!   `max_object_size` is *the* §3 complexity ("the size of the largest
//!   complex object occurring in the derivation tree");
//! * [`trace`] — the same semantics, materialising the derivation tree for
//!   inspection (height/width/branching, rendering);
//! * [`lazy`] — a streaming strategy for `powerset`, making the paper's §3
//!   caveat ("it is not obvious whether it still holds for a lazy
//!   evaluation strategy") measurable.
//!
//! All three strategies run on the hash-consed arena of
//! [`nra_core::value::intern`]: objects are `VId` handles, so the §3 size
//! observation performed at every rule application is an `O(1)` metadata
//! read, `clone` is a handle copy, and (de)duplication compares `u32`s.
//! The arenas are threaded **explicitly** through every rule; who owns
//! them is the caller's choice:
//!
//! * an [`EvalSession`] ([`session`]) owns its arenas, apply cache and
//!   config outright — queries **warm-start** across `session.eval`
//!   calls (the `(EId, VId)` apply cache survives, hits reported in
//!   [`EvalStats::warm_hits`]), residency is bounded by a
//!   generation-based eviction budget, the session is `Send`, and
//!   [`batch::eval_batch`] fans query batches across worker sessions on
//!   scoped threads that intern into one **shared concurrent store**
//!   and share one apply cache ([`EvalSession::split`]);
//! * the free functions ([`evaluate`], [`evaluate_vid`],
//!   [`evaluate_lazy`], [`evaluate_traced`]) remain as a thin
//!   thread-local-backed compatibility facade with the historical
//!   per-call semantics (fresh cache epoch each call; the thread's
//!   arenas retain interned nodes — see `intern::reset_thread_arena`
//!   for reclamation at quiescent points).
//!
//! The [`nra_core::Value`] tree API remains the public surface —
//! [`evaluate`] converts at the boundary — while [`evaluate_vid`] and
//! [`evaluate_lazy_vid`] expose the interned path end-to-end. The original
//! tree-walking implementation survives as [`evaluate_tree`], the
//! differential baseline the interned path is tested and benchmarked
//! against.
//!
//! On top of value interning, [`EvalConfig::memo`] switches the eager
//! (and traced) strategy onto the **apply cache**: expressions are
//! hash-consed too ([`nra_core::expr::intern`]), and each judgment
//! `f(C) ⇓ C'` is keyed `(EId, VId) → VId` in a BDD-style direct-mapped
//! table, so a judgment already derived returns its cached handle in
//! `O(1)` — which collapses the repeated body applications inside
//! `while` iterates and `map` over recurring elements. The same cache
//! extends to the lazy strategy's per-subset evaluations. Results are
//! bit-for-bit identical to memo-off evaluation (both differential
//! harnesses enforce this); cache activity is reported separately in
//! [`EvalStats::memo_hits`]/`memo_misses` rather than inflating the §3
//! counters, which stay exact in the default memo-off mode — though a
//! hit does charge the recorded cost of its cached subtree against the
//! node budget, so budget exhaustion is strategy-independent.
//!
//! Orthogonally, [`EvalConfig::semi_naive`] turns on **semi-naive
//! (delta-driven) iteration**: `while` threads a `(total, delta)` pair
//! through its iterates, the pointwise set rules (`map`, `μ`) evaluate
//! only on the frontier their input gained since they last fired, and
//! recognisable Prop 2.1 derived shapes (cartesian product, selection,
//! projection chains) run fused delta rules instead of re-deriving
//! their combinator spreads. Results and the fixpoint trajectory are
//! bit-for-bit the naive ones; the §3 counters only ever shrink, with
//! skipped work reported in [`EvalStats::delta_hits`]/`delta_skipped`
//! and the per-iterate frontier trace in
//! [`EvalStats::while_frontiers`]. [`EvalConfig::optimised`] combines
//! both switches — the configuration the benchmarks call "seminaive".
//!
//! Finally, [`EvalConfig::compiled`] retires interpretive dispatch from
//! the hot path: [`compile`] flattens the hash-consed `EId` DAG into a
//! flat register program (one routine per unique sub-expression, fused
//! superinstructions for the recognised shapes, a structured loop
//! header for `while` that preserves the semi-naive `(total, delta)`
//! threading) and a bytecode VM executes it against the value arena,
//! hitting the same apply cache with the same key stamping. Results,
//! `EvalStats` and the fixpoint trajectory are bit-for-bit the
//! interpreter's; programs are cached per session root and invalidated
//! on arena generation bumps. [`disassemble`] renders a program as
//! text and `compile::parse` reads it back.
//!
//! Budgets ([`error::EvalConfig`]) turn the theorems' "needs ≥ S space"
//! into clean errors carrying the exact requirement — for `powerset` the
//! requirement is computed combinatorially *before* materialisation, so
//! complexities far beyond physical memory can be measured.

#![deny(missing_docs)]

pub mod batch;
pub mod compile;
pub mod eager;
pub mod error;
pub mod lazy;
pub mod session;
mod shapes;
pub mod stats;
pub mod trace;

pub use batch::{
    effective_workers, estimated_batch_cost, eval_batch, eval_batch_assigned, BatchJob,
};
pub use compile::{disassemble, Program};
pub use eager::{eval, evaluate, evaluate_tree, evaluate_vid, Evaluation, VidEvaluation};
pub use error::{EvalConfig, EvalError};
pub use lazy::{evaluate_lazy, evaluate_lazy_vid, LazyEvaluation, LazyStats, LazyVidEvaluation};
pub use session::{EvalSession, RewritePass, SessionStats};
pub use stats::EvalStats;
pub use trace::{evaluate_traced, DerivNode, TracedEvaluation};
