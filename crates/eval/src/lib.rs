//! # nra-eval
//!
//! The eager natural-semantics evaluator of §3 of Suciu & Paredaens (1994),
//! instrumented with the paper's complexity measure, plus two companions:
//!
//! * [`eager`] — the rule-per-rule evaluator; [`eager::evaluate`] returns
//!   the result together with [`stats::EvalStats`], whose
//!   `max_object_size` is *the* §3 complexity ("the size of the largest
//!   complex object occurring in the derivation tree");
//! * [`trace`] — the same semantics, materialising the derivation tree for
//!   inspection (height/width/branching, rendering);
//! * [`lazy`] — a streaming strategy for `powerset`, making the paper's §3
//!   caveat ("it is not obvious whether it still holds for a lazy
//!   evaluation strategy") measurable.
//!
//! Budgets ([`error::EvalConfig`]) turn the theorems' "needs ≥ S space"
//! into clean errors carrying the exact requirement — for `powerset` the
//! requirement is computed combinatorially *before* materialisation, so
//! complexities far beyond physical memory can be measured.

#![warn(missing_docs)]

pub mod eager;
pub mod error;
pub mod lazy;
pub mod stats;
pub mod trace;

pub use eager::{eval, evaluate, Evaluation};
pub use error::{EvalConfig, EvalError};
pub use lazy::{evaluate_lazy, LazyEvaluation, LazyStats};
pub use stats::EvalStats;
pub use trace::{evaluate_traced, DerivNode, TracedEvaluation};
