//! Parallel batch evaluation over one **shared concurrent store**.
//!
//! A batch is a list of `(EId, VId)` queries against one parent
//! [`EvalSession`]. [`eval_batch`] first migrates the parent onto the
//! shared store ([`EvalSession::make_shared`] — handle-preserving and
//! idempotent), then fans the queries across `workers` scoped threads
//! (`std::thread::scope` — no external crates), each owning a worker
//! session [split](EvalSession::split) off the parent:
//!
//! 1. workers **share the parent's arenas and apply table** — there is
//!    no per-worker arena, no resolve-to-tree hand-off, and no
//!    re-intern merge pass; every worker interns into the single
//!    canonical store, so a handle issued by any of them is valid in
//!    all of them (and in the parent);
//! 2. workers claim queries round-robin and evaluate them on handles
//!    directly; because the apply table is shared, a judgment derived
//!    by one worker is an `O(1)` warm hit for every other worker (and
//!    for later queries of the parent) — one worker's derivation is
//!    the whole batch's warm start;
//! 3. results are returned in input order as handles into the shared
//!    store. Interning is canonical, so the handles (and the §3
//!    statistics, which are a pure function of `(query, input,
//!    config)`) are **bit-for-bit identical** to a sequential
//!    evaluation of the same batch, regardless of thread scheduling.
//!    The differential harness holds this across all seven graph
//!    families.
//!
//! Evaluation is pure, so correctness never depends on the partition;
//! the partition only decides the interleaving of cache fills, and the
//! shared apply table makes even that immaterial for warmth.
//!
//! The batch also keeps the parent's *accounting* honest:
//!
//! * every per-query [`EvalStats`](crate::stats::EvalStats) is folded
//!   into the parent's [`SessionStats`](crate::SessionStats), exactly
//!   as a sequential [`EvalSession::eval_vid`] loop would;
//! * the parent's resident budget is enforced at the batch boundary:
//!   if the shared store ends the batch over budget, the parent
//!   resolves the results, [evicts](EvalSession::evict), and re-interns
//!   them into the fresh generation (the returned handles are valid in
//!   the post-batch generation either way);
//! * a worker panic (e.g. a stale fabricated handle) is contained to
//!   its job and surfaced as
//!   [`EvalError::WorkerPanicked`]
//!   — the other jobs of the batch still return their results.
//!
//! ```
//! use nra_core::{queries, Value};
//! use nra_eval::{batch::eval_batch, EvalConfig, EvalSession};
//!
//! let mut session = EvalSession::new(EvalConfig::optimised());
//! let q = session.intern_expr(&queries::tc_while());
//! let jobs: Vec<_> = (3..7u64)
//!     .map(|n| (q, session.values_mut().chain(n)))
//!     .collect();
//! let results = eval_batch(&mut session, &jobs, 2);
//! for (n, ev) in (3..7u64).zip(&results) {
//!     let expect = session.values_mut().chain_tc(n);
//!     assert_eq!(ev.result.clone().unwrap(), expect);
//! }
//! ```

use crate::eager::VidEvaluation;
use crate::error::EvalError;
use crate::session::EvalSession;
use nra_core::expr::intern::EId;
use nra_core::value::intern::VId;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Evaluate `queries` (handles into `session`) across `workers` scoped
/// worker threads over the session's shared store, returning one
/// [`VidEvaluation`] per query, in input order, with result handles
/// valid in `session`. `workers` is clamped to `1..=queries.len()`;
/// `workers == 1` is the sequential degenerate case (still through a
/// worker session, so results are partition-independent by
/// construction). The session stays on the shared store afterwards, so
/// a later batch re-uses every judgment this one derived.
pub fn eval_batch(
    session: &mut EvalSession,
    queries: &[(EId, VId)],
    workers: usize,
) -> Vec<VidEvaluation> {
    if queries.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, queries.len());

    // fan out over worker sessions sharing the parent's store
    let worker_sessions = session.split(workers);
    let mut gathered: Vec<Option<VidEvaluation>> = (0..queries.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = worker_sessions
            .into_iter()
            .enumerate()
            .map(|(w, mut worker)| {
                scope.spawn(move || {
                    queries
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % workers == w)
                        .map(|(i, &(eid, input))| {
                            // contain a panicking job (stale fabricated
                            // handle, debug assertion, …) to that job
                            let ev = catch_unwind(AssertUnwindSafe(|| worker.eval_vid(eid, input)))
                                .unwrap_or_else(|payload| VidEvaluation {
                                    result: Err(EvalError::WorkerPanicked {
                                        detail: panic_detail(&payload),
                                    }),
                                    stats: crate::stats::EvalStats::default(),
                                });
                            (i, ev)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for (w, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(list) => {
                    for (i, ev) in list {
                        gathered[i] = Some(ev);
                    }
                }
                // a panic that escaped the per-job guard (should not
                // happen): fail that worker's share, keep the rest
                Err(payload) => {
                    let detail = panic_detail(&payload);
                    for slot in gathered.iter_mut().skip(w).step_by(workers) {
                        slot.get_or_insert_with(|| VidEvaluation {
                            result: Err(EvalError::WorkerPanicked {
                                detail: detail.clone(),
                            }),
                            stats: crate::stats::EvalStats::default(),
                        });
                    }
                }
            }
        }
    });
    let mut results: Vec<VidEvaluation> = gathered
        .into_iter()
        .map(|ev| ev.expect("every query was claimed by exactly one worker"))
        .collect();

    // the batch counts against the parent's books like a sequential
    // loop would: per-query stats fold into SessionStats…
    for ev in &results {
        session.absorb(&ev.stats);
    }
    // …and the resident budget is enforced at the batch boundary. An
    // eviction invalidates the gathered handles, so resolve-evict-
    // re-intern keeps the returned handles valid in the new generation.
    if session.over_budget() {
        let resolved: Vec<_> = results
            .iter()
            .map(|ev| ev.result.as_ref().ok().map(|&out| session.resolve(out)))
            .collect();
        session.evict();
        for (ev, value) in results.iter_mut().zip(&resolved) {
            if let Some(value) = value {
                ev.result = Ok(session.intern_value(value));
            }
        }
    }
    results
}

/// Render a panic payload for [`EvalError::WorkerPanicked`].
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::EvalConfig;
    use nra_core::queries;

    #[test]
    fn batch_matches_sequential_session_evaluation() {
        for config in [EvalConfig::default(), EvalConfig::optimised()] {
            let mut session = EvalSession::new(config.clone());
            let q_while = session.intern_expr(&queries::tc_while());
            let q_step = session.intern_expr(&queries::tc_step());
            let jobs: Vec<(EId, VId)> = (2..8u64)
                .flat_map(|n| {
                    let input = session.values_mut().chain(n);
                    [(q_while, input), (q_step, input)]
                })
                .collect();
            // sequential reference, through the same session
            let sequential: Vec<_> = jobs
                .iter()
                .map(|&(eid, input)| session.eval_vid(eid, input))
                .collect();
            let batched = eval_batch(&mut session, &jobs, 4);
            assert_eq!(batched.len(), sequential.len());
            for (i, (seq, par)) in sequential.iter().zip(&batched).enumerate() {
                // same canonical store ⇒ identical handles
                assert_eq!(
                    seq.result.as_ref().unwrap(),
                    par.result.as_ref().unwrap(),
                    "job {i}"
                );
            }
        }
    }

    #[test]
    fn batch_stats_are_partition_independent() {
        // the §3 statistics are a pure function of (query, input,
        // config): every worker count reports the same per-query stats
        let mut session = EvalSession::new(EvalConfig::default());
        let q = session.intern_expr(&queries::tc_while());
        let jobs: Vec<(EId, VId)> = (2..6u64)
            .map(|n| (q, session.values_mut().chain(n)))
            .collect();
        let one = eval_batch(&mut session, &jobs, 1);
        let four = eval_batch(&mut session, &jobs, 4);
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        }
    }

    #[test]
    fn empty_and_oversized_worker_counts() {
        let mut session = EvalSession::new(EvalConfig::default());
        assert!(eval_batch(&mut session, &[], 4).is_empty());
        let q = session.intern_expr(&queries::tc_while());
        let input = session.values_mut().chain(3);
        let jobs = [(q, input)];
        // more workers than jobs clamps cleanly
        let out = eval_batch(&mut session, &jobs, 64);
        let expect = session.values_mut().chain_tc(3);
        assert_eq!(out[0].result.clone().unwrap(), expect);
    }

    #[test]
    fn batch_shares_one_store_and_one_apply_table() {
        // after a batch the parent is on the shared store, and the
        // judgments the workers derived are warm for the parent
        let mut session = EvalSession::new(EvalConfig::optimised());
        let q = session.intern_expr(&queries::tc_while());
        let jobs: Vec<(EId, VId)> = (4..8u64)
            .map(|n| (q, session.values_mut().chain(n)))
            .collect();
        assert!(!session.is_shared());
        let first = eval_batch(&mut session, &jobs, 4);
        assert!(session.is_shared());
        // a second batch over the same jobs hits the shared table the
        // first batch filled: every job reports warm activity
        let second = eval_batch(&mut session, &jobs, 4);
        for (i, (a, b)) in first.iter().zip(&second).enumerate() {
            assert_eq!(a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert!(
                b.stats.warm_hits > 0,
                "job {i}: second batch found no warm entries: {:?}",
                b.stats
            );
        }
        // …and the parent itself hits them too, sequentially
        let (eid, input) = jobs[2];
        let warm = session.eval_vid(eid, input);
        assert!(warm.stats.warm_hits > 0, "{:?}", warm.stats);
    }

    /// Regression (bug 1): worker sessions used to be constructed with
    /// `EvalSession::new(config)` — no resident budget — so a budgeted
    /// parent could blow N-fold past its ceiling during a batch with
    /// `evictions` still reading 0. The budget is now enforced at the
    /// batch boundary.
    #[test]
    fn batch_respects_the_parent_resident_budget() {
        let mut session = EvalSession::with_resident_budget(EvalConfig::optimised(), 1);
        let q = session.intern_expr(&queries::tc_while());
        let jobs: Vec<(EId, VId)> = (2..6u64)
            .map(|n| (q, session.values_mut().chain(n)))
            .collect();
        let generation = session.generation();
        let out = eval_batch(&mut session, &jobs, 2);
        assert!(
            session.stats().evictions >= 1,
            "a 1-byte budget must evict at the batch boundary: {:?}",
            session.stats()
        );
        assert!(session.generation() > generation);
        // the returned handles were re-interned into the new generation
        for (n, ev) in (2..6u64).zip(&out) {
            let expect = session.values_mut().chain_tc(n);
            assert_eq!(*ev.result.as_ref().unwrap(), expect, "n={n}");
        }
    }

    /// Regression (bug 3): a single panicking job used to abort the
    /// whole batch through `handle.join().expect(…)`. It now surfaces
    /// as a per-job `WorkerPanicked` error and the other jobs return
    /// their results.
    #[test]
    fn one_panicking_job_does_not_poison_the_batch() {
        let mut session = EvalSession::new(EvalConfig::optimised());
        let q = session.intern_expr(&queries::tc_while());
        let good: Vec<(EId, VId)> = (2..6u64)
            .map(|n| (q, session.values_mut().chain(n)))
            .collect();
        // a fabricated handle no arena ever issued: evaluating it
        // panics inside the worker (stale-handle detection)
        let poison = (q, VId::from_index(usize::from(u16::MAX) << 8));
        let mut jobs = good.clone();
        jobs.insert(2, poison);
        let out = eval_batch(&mut session, &jobs, 3);
        assert_eq!(out.len(), jobs.len());
        assert!(
            matches!(out[2].result, Err(EvalError::WorkerPanicked { .. })),
            "poisoned job must fail with WorkerPanicked: {:?}",
            out[2].result
        );
        let expect: Vec<_> = (2..6u64)
            .map(|n| session.values_mut().chain_tc(n))
            .collect();
        let survivors = out
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 2)
            .map(|(_, ev)| ev);
        for (ev, expect) in survivors.zip(&expect) {
            assert_eq!(ev.result.as_ref().unwrap(), expect);
        }
    }
}
