//! Parallel batch evaluation over one **shared concurrent store**.
//!
//! A batch is a list of `(EId, VId)` queries against one parent
//! [`EvalSession`]. [`eval_batch`] first migrates the parent onto the
//! shared store ([`EvalSession::make_shared`] — handle-preserving and
//! idempotent), then fans the queries across `workers` scoped threads
//! (`std::thread::scope` — no external crates), each owning a worker
//! session [split](EvalSession::split) off the parent:
//!
//! 1. workers **share the parent's arenas and apply table** — there is
//!    no per-worker arena, no resolve-to-tree hand-off, and no
//!    re-intern merge pass; every worker interns into the single
//!    canonical store, so a handle issued by any of them is valid in
//!    all of them (and in the parent);
//! 2. workers claim the queries their **assignment** names (round-robin
//!    for [`eval_batch`]; scheduling layers pass an explicit partition
//!    to [`eval_batch_assigned`], e.g. grouping jobs that share
//!    hash-consed subtrees onto one worker) and evaluate them on
//!    handles directly; because the apply table is shared, a judgment
//!    derived by one worker is an `O(1)` warm hit for every other
//!    worker (and for later queries of the parent) — one worker's
//!    derivation is the whole batch's warm start;
//! 3. results are returned in input order as handles into the shared
//!    store. Interning is canonical, so the handles (and the §3
//!    statistics, which are a pure function of `(query, input,
//!    config)`) are **bit-for-bit identical** to a sequential
//!    evaluation of the same batch, regardless of thread scheduling.
//!    The differential harness holds this across all seven graph
//!    families.
//!
//! Evaluation is pure, so correctness never depends on the partition;
//! the partition only decides the interleaving of cache fills, and the
//! shared apply table makes even that immaterial for warmth.
//!
//! **Small batches never pay for threads.** Spawning a scoped worker
//! costs on the order of 100µs, which dominates a sub-millisecond
//! batch — the `dag/tc_while n=8` workload used to *lose* 8% against
//! sequential evaluation. [`eval_batch`] therefore estimates the batch
//! cost up front ([`estimated_batch_cost`], an `O(1)`-per-job metadata
//! read) and runs batches under [`SMALL_BATCH_COST`] inline on the
//! calling thread, still through a single split worker session — so
//! the store migration, panic containment, statistics and budget
//! accounting are identical on both paths, and the results stay
//! bit-for-bit the same (a regression test pins both sides of the
//! threshold).
//!
//! The batch also keeps the parent's *accounting* honest:
//!
//! * every per-query [`EvalStats`](crate::stats::EvalStats) is folded
//!   into the parent's [`SessionStats`](crate::SessionStats), exactly
//!   as a sequential [`EvalSession::eval_vid`] loop would;
//! * the parent's resident budget is enforced at the batch boundary:
//!   if the shared store ends the batch over budget, the parent
//!   resolves the results, [evicts](EvalSession::evict), and re-interns
//!   them into the fresh generation (the returned handles are valid in
//!   the post-batch generation either way);
//! * a worker panic (e.g. a stale fabricated handle) is contained to
//!   its job and surfaced as
//!   [`EvalError::WorkerPanicked`]
//!   — the other jobs of the batch still return their results.
//!
//! ```
//! use nra_core::{queries, Value};
//! use nra_eval::{batch::eval_batch, EvalConfig, EvalSession};
//!
//! let mut session = EvalSession::new(EvalConfig::optimised());
//! let q = session.intern_expr(&queries::tc_while());
//! let jobs: Vec<_> = (3..7u64)
//!     .map(|n| (q, session.values_mut().chain(n)))
//!     .collect();
//! let results = eval_batch(&mut session, &jobs, 2);
//! for (n, ev) in (3..7u64).zip(&results) {
//!     let expect = session.values_mut().chain_tc(n);
//!     assert_eq!(ev.result.clone().unwrap(), expect);
//! }
//! ```

use crate::eager::VidEvaluation;
use crate::error::EvalError;
use crate::session::EvalSession;
use nra_core::expr::intern::EId;
use nra_core::value::intern::VId;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Batches whose [`estimated_batch_cost`] falls below this run inline on
/// the calling thread instead of spawning workers. Calibrated so the
/// 12-job `tc_while` batches on ≤10-node graphs (sub-millisecond of
/// total work, where thread spawns used to eat the parallel win) stay
/// sequential while the larger differential/bench workloads still fan
/// out.
pub const SMALL_BATCH_COST: u64 = 750_000;

/// One job of an assigned batch: a query applied to an input, with an
/// optional per-job `max_object_size` tightening (the serving layer's
/// *declared budget* — admission control predicts a space envelope per
/// query and the engine enforces it, surfacing an overrun as
/// [`EvalError::SpaceBudgetExceeded`]).
/// `None` inherits the session's configured budget unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchJob {
    /// The hash-consed query.
    pub query: EId,
    /// The interned input.
    pub input: VId,
    /// Per-job space budget (§3 object-size units); the effective budget
    /// is the minimum of this and the session's configured one.
    pub max_object_size: Option<u64>,
}

impl From<(EId, VId)> for BatchJob {
    fn from((query, input): (EId, VId)) -> Self {
        BatchJob {
            query,
            input,
            max_object_size: None,
        }
    }
}

/// A crude, `O(1)`-per-job cost proxy for batch scheduling:
/// `Σ ops(query) · size(input)²` over the jobs — the square reflecting
/// that the relational workloads are dominated by their self-products.
/// Both factors are interned metadata reads. Scheduling layers use it
/// to pick worker counts and balance partitions; [`eval_batch`] uses it
/// to decide the sequential fallback.
pub fn estimated_batch_cost(session: &EvalSession, queries: &[(EId, VId)]) -> u64 {
    queries
        .iter()
        .map(|&(eid, input)| {
            // a stale/fabricated handle costs 0 here and panics inside
            // the per-job guard instead (WorkerPanicked), not in the
            // scheduler
            if eid.index() >= session.exprs().node_count()
                || input.index() >= session.values().len()
            {
                return 0;
            }
            let s = session.values().size(input);
            session.exprs().ops(eid).saturating_mul(s.saturating_mul(s))
        })
        .fold(0u64, u64::saturating_add)
}

/// The worker count [`eval_batch`] actually uses for this batch — the
/// scheduling decision itself, exposed so callers (and the regression
/// tests) can check the small-batch floor without timing anything: the
/// requested count clamped to `1..=queries.len()`, then floored to a
/// single inline worker when [`estimated_batch_cost`] falls under
/// [`SMALL_BATCH_COST`] (sub-millisecond batches lose more to thread
/// spawns than they gain from parallelism — the `batch_speedup: 0.168`
/// regression on chain n=8). Returns 0 for an empty batch.
pub fn effective_workers(session: &EvalSession, queries: &[(EId, VId)], workers: usize) -> usize {
    if queries.is_empty() {
        return 0;
    }
    if estimated_batch_cost(session, queries) < SMALL_BATCH_COST {
        1
    } else {
        workers.clamp(1, queries.len())
    }
}

/// Evaluate `queries` (handles into `session`) across `workers` scoped
/// worker threads over the session's shared store, returning one
/// [`VidEvaluation`] per query, in input order, with result handles
/// valid in `session`. The worker count is [`effective_workers`]:
/// clamped to `1..=queries.len()`, and a batch under
/// [`SMALL_BATCH_COST`] runs on one inline worker (results are
/// partition-independent by construction, so the fallback is invisible
/// except in wall-clock time). The session stays on the shared store
/// afterwards, so a later batch re-uses every judgment this one
/// derived.
pub fn eval_batch(
    session: &mut EvalSession,
    queries: &[(EId, VId)],
    workers: usize,
) -> Vec<VidEvaluation> {
    if queries.is_empty() {
        return Vec::new();
    }
    let workers = effective_workers(session, queries, workers);
    let assignment: Vec<Vec<usize>> = (0..workers)
        .map(|w| (w..queries.len()).step_by(workers).collect())
        .collect();
    let jobs: Vec<BatchJob> = queries.iter().copied().map(BatchJob::from).collect();
    eval_batch_assigned(session, &jobs, &assignment)
}

/// The scheduling hook under [`eval_batch`]: evaluate `jobs` under an
/// **explicit partition** — `assignment[w]` lists the job indices worker
/// `w` evaluates, and every job index must be assigned exactly once.
/// A single-worker assignment runs inline on the calling thread (no
/// spawn); anything else fans out on scoped threads. Results come back
/// in job order either way, with the same statistics folding, panic
/// containment and parent-budget enforcement as [`eval_batch`] — which
/// is this function with a round-robin assignment.
///
/// Serving layers use the explicit partition for **cache-aware
/// placement**: jobs sharing hash-consed subtrees grouped onto the same
/// worker derive their common judgments once and hit the shared apply
/// table for the rest.
pub fn eval_batch_assigned(
    session: &mut EvalSession,
    jobs: &[BatchJob],
    assignment: &[Vec<usize>],
) -> Vec<VidEvaluation> {
    if jobs.is_empty() {
        return Vec::new();
    }
    let assigned: usize = assignment.iter().map(Vec::len).sum();
    debug_assert!(
        assigned == jobs.len() && {
            let mut seen = vec![false; jobs.len()];
            assignment
                .iter()
                .flatten()
                .all(|&i| i < jobs.len() && !std::mem::replace(&mut seen[i], true))
        },
        "assignment must name every job index exactly once"
    );

    let mut worker_sessions = session.split(assignment.len().max(1));
    let mut gathered: Vec<Option<VidEvaluation>> = (0..jobs.len()).map(|_| None).collect();
    if assignment.len() <= 1 {
        // inline fallback: same worker-session semantics, no spawn
        let worker = &mut worker_sessions[0];
        for &i in assignment.first().map(Vec::as_slice).unwrap_or(&[]) {
            gathered[i] = Some(run_job(worker, jobs[i]));
        }
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = worker_sessions
                .into_iter()
                .zip(assignment)
                .map(|(mut worker, mine)| {
                    scope.spawn(move || {
                        mine.iter()
                            .map(|&i| (i, run_job(&mut worker, jobs[i])))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for (w, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(list) => {
                        for (i, ev) in list {
                            gathered[i] = Some(ev);
                        }
                    }
                    // a panic that escaped the per-job guard (should not
                    // happen): fail that worker's share, keep the rest
                    Err(payload) => {
                        let detail = panic_detail(&payload);
                        for &i in &assignment[w] {
                            gathered[i].get_or_insert_with(|| VidEvaluation {
                                result: Err(EvalError::WorkerPanicked {
                                    detail: detail.clone(),
                                }),
                                stats: crate::stats::EvalStats::default(),
                            });
                        }
                    }
                }
            }
        });
    }
    let mut results: Vec<VidEvaluation> = gathered
        .into_iter()
        .map(|ev| ev.expect("every job was claimed by exactly one worker"))
        .collect();

    // the batch counts against the parent's books like a sequential
    // loop would: per-query stats fold into SessionStats…
    for ev in &results {
        session.absorb(&ev.stats);
    }
    // …and the resident budget is enforced at the batch boundary. An
    // eviction invalidates the gathered handles, so resolve-evict-
    // re-intern keeps the returned handles valid in the new generation.
    if session.over_budget() {
        let resolved: Vec<_> = results
            .iter()
            .map(|ev| ev.result.as_ref().ok().map(|&out| session.resolve(out)))
            .collect();
        session.evict();
        for (ev, value) in results.iter_mut().zip(&resolved) {
            if let Some(value) = value {
                ev.result = Ok(session.intern_value(value));
            }
        }
    }
    results
}

/// One job on one worker session, with the panic guard: a panicking job
/// (stale fabricated handle, debug assertion, …) is contained to that
/// job and surfaced as [`EvalError::WorkerPanicked`].
fn run_job(worker: &mut EvalSession, job: BatchJob) -> VidEvaluation {
    catch_unwind(AssertUnwindSafe(|| {
        worker.eval_vid_budgeted(job.query, job.input, job.max_object_size)
    }))
    .unwrap_or_else(|payload| VidEvaluation {
        result: Err(EvalError::WorkerPanicked {
            detail: panic_detail(&payload),
        }),
        stats: crate::stats::EvalStats::default(),
    })
}

/// Render a panic payload for [`EvalError::WorkerPanicked`].
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::EvalConfig;
    use nra_core::queries;

    #[test]
    fn batch_matches_sequential_session_evaluation() {
        for config in [EvalConfig::default(), EvalConfig::optimised()] {
            let mut session = EvalSession::new(config.clone());
            let q_while = session.intern_expr(&queries::tc_while());
            let q_step = session.intern_expr(&queries::tc_step());
            let jobs: Vec<(EId, VId)> = (2..8u64)
                .flat_map(|n| {
                    let input = session.values_mut().chain(n);
                    [(q_while, input), (q_step, input)]
                })
                .collect();
            // sequential reference, through the same session
            let sequential: Vec<_> = jobs
                .iter()
                .map(|&(eid, input)| session.eval_vid(eid, input))
                .collect();
            let batched = eval_batch(&mut session, &jobs, 4);
            assert_eq!(batched.len(), sequential.len());
            for (i, (seq, par)) in sequential.iter().zip(&batched).enumerate() {
                // same canonical store ⇒ identical handles
                assert_eq!(
                    seq.result.as_ref().unwrap(),
                    par.result.as_ref().unwrap(),
                    "job {i}"
                );
            }
        }
    }

    #[test]
    fn batch_stats_are_partition_independent() {
        // the §3 statistics are a pure function of (query, input,
        // config): every worker count reports the same per-query stats
        let mut session = EvalSession::new(EvalConfig::default());
        let q = session.intern_expr(&queries::tc_while());
        let jobs: Vec<(EId, VId)> = (2..6u64)
            .map(|n| (q, session.values_mut().chain(n)))
            .collect();
        let one = eval_batch(&mut session, &jobs, 1);
        let four = eval_batch(&mut session, &jobs, 4);
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        }
    }

    #[test]
    fn empty_and_oversized_worker_counts() {
        let mut session = EvalSession::new(EvalConfig::default());
        assert!(eval_batch(&mut session, &[], 4).is_empty());
        let q = session.intern_expr(&queries::tc_while());
        let input = session.values_mut().chain(3);
        let jobs = [(q, input)];
        // more workers than jobs clamps cleanly
        let out = eval_batch(&mut session, &jobs, 64);
        let expect = session.values_mut().chain_tc(3);
        assert_eq!(out[0].result.clone().unwrap(), expect);
    }

    #[test]
    fn batch_shares_one_store_and_one_apply_table() {
        // after a batch the parent is on the shared store, and the
        // judgments the workers derived are warm for the parent
        let mut session = EvalSession::new(EvalConfig::optimised());
        let q = session.intern_expr(&queries::tc_while());
        let jobs: Vec<(EId, VId)> = (4..8u64)
            .map(|n| (q, session.values_mut().chain(n)))
            .collect();
        assert!(!session.is_shared());
        let first = eval_batch(&mut session, &jobs, 4);
        assert!(session.is_shared());
        // a second batch over the same jobs hits the shared table the
        // first batch filled: every job reports warm activity
        let second = eval_batch(&mut session, &jobs, 4);
        for (i, (a, b)) in first.iter().zip(&second).enumerate() {
            assert_eq!(a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert!(
                b.stats.warm_hits > 0,
                "job {i}: second batch found no warm entries: {:?}",
                b.stats
            );
        }
        // …and the parent itself hits them too, sequentially
        let (eid, input) = jobs[2];
        let warm = session.eval_vid(eid, input);
        assert!(warm.stats.warm_hits > 0, "{:?}", warm.stats);
    }

    /// Regression (bug 1): worker sessions used to be constructed with
    /// `EvalSession::new(config)` — no resident budget — so a budgeted
    /// parent could blow N-fold past its ceiling during a batch with
    /// `evictions` still reading 0. The budget is now enforced at the
    /// batch boundary.
    #[test]
    fn batch_respects_the_parent_resident_budget() {
        let mut session = EvalSession::with_resident_budget(EvalConfig::optimised(), 1);
        let q = session.intern_expr(&queries::tc_while());
        let jobs: Vec<(EId, VId)> = (2..6u64)
            .map(|n| (q, session.values_mut().chain(n)))
            .collect();
        let generation = session.generation();
        let out = eval_batch(&mut session, &jobs, 2);
        assert!(
            session.stats().evictions >= 1,
            "a 1-byte budget must evict at the batch boundary: {:?}",
            session.stats()
        );
        assert!(session.generation() > generation);
        // the returned handles were re-interned into the new generation
        for (n, ev) in (2..6u64).zip(&out) {
            let expect = session.values_mut().chain_tc(n);
            assert_eq!(*ev.result.as_ref().unwrap(), expect, "n={n}");
        }
    }

    /// Regression (bug 3): a single panicking job used to abort the
    /// whole batch through `handle.join().expect(…)`. It now surfaces
    /// as a per-job `WorkerPanicked` error and the other jobs return
    /// their results.
    #[test]
    fn one_panicking_job_does_not_poison_the_batch() {
        let mut session = EvalSession::new(EvalConfig::optimised());
        let q = session.intern_expr(&queries::tc_while());
        let good: Vec<(EId, VId)> = (2..6u64)
            .map(|n| (q, session.values_mut().chain(n)))
            .collect();
        // a fabricated handle no arena ever issued: evaluating it
        // panics inside the worker (stale-handle detection)
        let poison = (q, VId::from_index(usize::from(u16::MAX) << 8));
        let mut jobs = good.clone();
        jobs.insert(2, poison);
        let out = eval_batch(&mut session, &jobs, 3);
        assert_eq!(out.len(), jobs.len());
        assert!(
            matches!(out[2].result, Err(EvalError::WorkerPanicked { .. })),
            "poisoned job must fail with WorkerPanicked: {:?}",
            out[2].result
        );
        let expect: Vec<_> = (2..6u64)
            .map(|n| session.values_mut().chain_tc(n))
            .collect();
        let survivors = out
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 2)
            .map(|(_, ev)| ev);
        for (ev, expect) in survivors.zip(&expect) {
            assert_eq!(ev.result.as_ref().unwrap(), expect);
        }
    }

    /// A panicking job must be contained on the *inline* (small-batch)
    /// path too — same guard, no thread to die on.
    #[test]
    fn panicking_job_is_contained_on_the_inline_path() {
        let mut session = EvalSession::new(EvalConfig::optimised());
        let q = session.intern_expr(&queries::tc_while());
        let good = session.values_mut().chain(3);
        let jobs = [(q, good), (q, VId::from_index(usize::from(u16::MAX) << 8))];
        assert!(estimated_batch_cost(&session, &jobs) < SMALL_BATCH_COST);
        let out = eval_batch(&mut session, &jobs, 4);
        let expect = session.values_mut().chain_tc(3);
        assert_eq!(out[0].result.clone().unwrap(), expect);
        assert!(matches!(
            out[1].result,
            Err(EvalError::WorkerPanicked { .. })
        ));
    }

    /// The small-batch regression fix, pinned from both sides: the
    /// 12-job `tc_while` batches on small graphs fall under
    /// [`SMALL_BATCH_COST`] (they run inline), the larger bench
    /// workloads stay parallel, and the results are **bit-for-bit**
    /// identical either way — forced through both code paths via
    /// explicit assignments.
    #[test]
    fn small_batch_fallback_is_bit_for_bit() {
        let mut session = EvalSession::new(EvalConfig::optimised());
        let q = session.intern_expr(&queries::tc_while());
        let small: Vec<(EId, VId)> = (0..12)
            .map(|_| (q, session.values_mut().chain(8)))
            .collect();
        assert!(
            estimated_batch_cost(&session, &small) < SMALL_BATCH_COST,
            "the dag/chain n=8 batch shape must take the sequential fallback"
        );
        let big: Vec<(EId, VId)> = (0..12)
            .map(|_| (q, session.values_mut().chain(12)))
            .collect();
        assert!(
            estimated_batch_cost(&session, &big) >= SMALL_BATCH_COST,
            "the chain n=12 batch must still fan out"
        );

        // both shapes, both code paths, same result bits (under the
        // warm cache, per-job *hit counters* are timing-dependent
        // across threads by design, so handles are the contract here)
        for jobs in [&small, &big] {
            let batch_jobs: Vec<BatchJob> = jobs.iter().copied().map(BatchJob::from).collect();
            let inline_assignment = vec![(0..jobs.len()).collect::<Vec<_>>()];
            let threaded_assignment: Vec<Vec<usize>> = (0..4)
                .map(|w| (w..jobs.len()).step_by(4).collect())
                .collect();
            let inline = eval_batch_assigned(&mut session, &batch_jobs, &inline_assignment);
            let threaded = eval_batch_assigned(&mut session, &batch_jobs, &threaded_assignment);
            for (i, (a, b)) in inline.iter().zip(&threaded).enumerate() {
                assert_eq!(
                    a.result.as_ref().unwrap(),
                    b.result.as_ref().unwrap(),
                    "job {i}: inline vs threaded handles"
                );
            }
        }

        // under the exact (memo-off) §3 accounting, the *statistics*
        // are bit-for-bit partition-independent too
        let mut exact = EvalSession::new(EvalConfig::default());
        let q = exact.intern_expr(&queries::tc_while());
        let jobs: Vec<BatchJob> = (2..8u64)
            .map(|n| BatchJob::from((q, exact.values_mut().chain(n))))
            .collect();
        let inline_assignment = vec![(0..jobs.len()).collect::<Vec<_>>()];
        let threaded_assignment: Vec<Vec<usize>> = (0..3)
            .map(|w| (w..jobs.len()).step_by(3).collect())
            .collect();
        let inline = eval_batch_assigned(&mut exact, &jobs, &inline_assignment);
        let threaded = eval_batch_assigned(&mut exact, &jobs, &threaded_assignment);
        for (i, (a, b)) in inline.iter().zip(&threaded).enumerate() {
            assert_eq!(a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(a.stats, b.stats, "job {i}: inline vs threaded stats");
        }
    }

    /// The scheduling decision itself, unit-tested without timing: the
    /// bench's 12-job batch shapes land on one inline worker at chain
    /// n=8 (the `batch_speedup: 0.168` regression shape) and fan out to
    /// the requested four at chain n=12; the clamp and the empty batch
    /// behave.
    #[test]
    fn effective_workers_floors_small_batches() {
        let mut session = EvalSession::new(EvalConfig::optimised());
        let q = session.intern_expr(&queries::tc_while());
        let small: Vec<(EId, VId)> = (0..12)
            .map(|_| (q, session.values_mut().chain(8)))
            .collect();
        assert_eq!(effective_workers(&session, &small, 4), 1);
        let big: Vec<(EId, VId)> = (0..12)
            .map(|_| (q, session.values_mut().chain(12)))
            .collect();
        assert_eq!(effective_workers(&session, &big, 4), 4);
        // the clamp still applies above the floor
        assert_eq!(effective_workers(&session, &big, 20), 12);
        assert_eq!(effective_workers(&session, &[], 4), 0);
    }

    /// The explicit-assignment hook honours arbitrary partitions (here:
    /// all jobs on one of three workers, the others idle) and per-job
    /// declared budgets — an undersized budget surfaces as the engine's
    /// own `SpaceBudgetExceeded`, not a panic.
    #[test]
    fn assigned_partitions_and_declared_budgets() {
        let mut session = EvalSession::new(EvalConfig::optimised());
        let q = session.intern_expr(&queries::tc_while());
        let jobs: Vec<BatchJob> = (4..8u64)
            .map(|n| BatchJob {
                query: q,
                input: session.values_mut().chain(n),
                max_object_size: if n == 5 { Some(1) } else { None },
            })
            .collect();
        let assignment = vec![vec![], vec![3, 1, 0, 2], vec![]];
        let out = eval_batch_assigned(&mut session, &jobs, &assignment);
        for (n, ev) in (4..8u64).zip(&out) {
            if n == 5 {
                assert!(
                    matches!(ev.result, Err(EvalError::SpaceBudgetExceeded { .. })),
                    "declared budget of 1 must trip: {:?}",
                    ev.result
                );
            } else {
                let expect = session.values_mut().chain_tc(n);
                assert_eq!(ev.result.clone().unwrap(), expect, "n={n}");
            }
        }
        // a budget generous enough never changes the result
        let roomy: Vec<BatchJob> = jobs
            .iter()
            .map(|j| BatchJob {
                max_object_size: Some(u64::MAX),
                ..*j
            })
            .collect();
        let rr = vec![vec![0, 2], vec![1, 3]];
        let out = eval_batch_assigned(&mut session, &roomy, &rr);
        for (n, ev) in (4..8u64).zip(&out) {
            let expect = session.values_mut().chain_tc(n);
            assert_eq!(ev.result.clone().unwrap(), expect, "n={n}");
        }
    }
}
