//! Parallel batch evaluation over worker sessions.
//!
//! A batch is a list of `(EId, VId)` queries against one parent
//! [`EvalSession`]. [`eval_batch`] fans them across `workers` scoped
//! threads (`std::thread::scope` — no external crates), each owning a
//! fresh worker `EvalSession` under the parent's
//! [`EvalConfig`](crate::error::EvalConfig):
//!
//! 1. every query is **resolved** out of the parent's arenas into its
//!    tree form (handles are arena-local, trees are the transferable
//!    representation);
//! 2. workers claim queries round-robin and evaluate them — within one
//!    worker, the session's apply cache and arenas warm-start across
//!    its chunk, exactly as in a sequential session;
//! 3. results return as trees and are **canonically re-interned** into
//!    the parent session, in input order — interning is canonical, so
//!    the handles (and the §3 statistics, which are a pure function of
//!    `(query, input, config)`) are **bit-for-bit identical** to a
//!    sequential evaluation of the same batch, regardless of thread
//!    scheduling. The differential harness holds this across all seven
//!    graph families.
//!
//! Evaluation is pure, so correctness never depends on the partition;
//! the partition only decides which judgments share a worker's warm
//! cache.
//!
//! ```
//! use nra_core::{queries, Value};
//! use nra_eval::{batch::eval_batch, EvalConfig, EvalSession};
//!
//! let mut session = EvalSession::new(EvalConfig::optimised());
//! let q = session.intern_expr(&queries::tc_while());
//! let jobs: Vec<_> = (3..7u64)
//!     .map(|n| (q, session.values_mut().chain(n)))
//!     .collect();
//! let results = eval_batch(&mut session, &jobs, 2);
//! for (n, ev) in (3..7u64).zip(&results) {
//!     let expect = session.values_mut().chain_tc(n);
//!     assert_eq!(ev.result.clone().unwrap(), expect);
//! }
//! ```

use crate::eager::VidEvaluation;
use crate::session::EvalSession;
use nra_core::expr::intern::EId;
use nra_core::value::intern::VId;
use nra_core::value::Value;
use nra_core::Expr;

/// Evaluate `queries` (handles into `session`) across `workers` scoped
/// worker threads, returning one [`VidEvaluation`] per query, in input
/// order, with result handles re-interned into `session`. `workers` is
/// clamped to `1..=queries.len()`; `workers == 1` is the sequential
/// degenerate case (still through a worker session, so results are
/// partition-independent by construction).
pub fn eval_batch(
    session: &mut EvalSession,
    queries: &[(EId, VId)],
    workers: usize,
) -> Vec<VidEvaluation> {
    if queries.is_empty() {
        return Vec::new();
    }
    // 1. resolve the batch out of the parent's arenas
    let jobs: Vec<(Expr, Value)> = queries
        .iter()
        .map(|&(eid, input)| {
            (
                session.exprs().resolve(eid),
                session.values().resolve(input),
            )
        })
        .collect();
    let config = session.config().clone();
    let workers = workers.clamp(1, jobs.len());

    // 2. fan out over scoped worker sessions
    let mut gathered: Vec<Option<Evaluated>> = (0..jobs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let jobs = &jobs;
                let config = config.clone();
                scope.spawn(move || {
                    let mut worker = EvalSession::new(config);
                    jobs.iter()
                        .enumerate()
                        .filter(|(i, _)| i % workers == w)
                        .map(|(i, (expr, input))| {
                            let ev = worker.eval(expr, input);
                            (
                                i,
                                Evaluated {
                                    result: ev.result,
                                    stats: ev.stats,
                                },
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, ev) in handle.join().expect("batch worker panicked") {
                gathered[i] = Some(ev);
            }
        }
    });

    // 3. canonical re-intern pass, in input order
    gathered
        .into_iter()
        .map(|ev| {
            let ev = ev.expect("every query was claimed by exactly one worker");
            VidEvaluation {
                result: ev.result.map(|value| session.intern_value(&value)),
                stats: ev.stats,
            }
        })
        .collect()
}

/// One worker result in transferable (tree) form.
struct Evaluated {
    result: Result<Value, crate::error::EvalError>,
    stats: crate::stats::EvalStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::EvalConfig;
    use nra_core::queries;

    #[test]
    fn batch_matches_sequential_session_evaluation() {
        for config in [EvalConfig::default(), EvalConfig::optimised()] {
            let mut session = EvalSession::new(config.clone());
            let q_while = session.intern_expr(&queries::tc_while());
            let q_step = session.intern_expr(&queries::tc_step());
            let jobs: Vec<(EId, VId)> = (2..8u64)
                .flat_map(|n| {
                    let input = session.values_mut().chain(n);
                    [(q_while, input), (q_step, input)]
                })
                .collect();
            // sequential reference, through the same session
            let sequential: Vec<_> = jobs
                .iter()
                .map(|&(eid, input)| session.eval_vid(eid, input))
                .collect();
            let batched = eval_batch(&mut session, &jobs, 4);
            assert_eq!(batched.len(), sequential.len());
            for (i, (seq, par)) in sequential.iter().zip(&batched).enumerate() {
                // same arena + canonical interning ⇒ identical handles
                assert_eq!(
                    seq.result.as_ref().unwrap(),
                    par.result.as_ref().unwrap(),
                    "job {i}"
                );
            }
        }
    }

    #[test]
    fn batch_stats_are_partition_independent() {
        // the §3 statistics are a pure function of (query, input,
        // config): every worker count reports the same per-query stats
        let mut session = EvalSession::new(EvalConfig::default());
        let q = session.intern_expr(&queries::tc_while());
        let jobs: Vec<(EId, VId)> = (2..6u64)
            .map(|n| (q, session.values_mut().chain(n)))
            .collect();
        let one = eval_batch(&mut session, &jobs, 1);
        let four = eval_batch(&mut session, &jobs, 4);
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        }
    }

    #[test]
    fn empty_and_oversized_worker_counts() {
        let mut session = EvalSession::new(EvalConfig::default());
        assert!(eval_batch(&mut session, &[], 4).is_empty());
        let q = session.intern_expr(&queries::tc_while());
        let input = session.values_mut().chain(3);
        let jobs = [(q, input)];
        // more workers than jobs clamps cleanly
        let out = eval_batch(&mut session, &jobs, 64);
        let expect = session.values_mut().chain_tc(3);
        assert_eq!(out[0].result.clone().unwrap(), expect);
    }
}
