//! The paper's complexity measure (§3) and its companions.
//!
//! > "The complexity of some evaluation `f(C) ⇓` is defined to be the size
//! > of the largest complex object occurring in the derivation tree of
//! > `f(C) ⇓`. This complexity measure is robust: e.g. the total number of
//! > nodes of the evaluation tree is polynomially bounded by this
//! > complexity, while the sum of the sizes of all complex objects in a
//! > tree is polynomially related to it."
//!
//! [`EvalStats`] records all three quantities — `max_object_size` (the
//! complexity), `nodes`, and `total_size` — plus per-rule counters, so
//! experiment E10 can verify the claimed polynomial relations empirically.

use std::collections::BTreeMap;

/// Statistics of one eager evaluation, in the sense of §3.
///
/// Equality deliberately ignores the `dense_ops`/`dense_promotions`
/// counters (see the manual [`PartialEq`] impl): whether a set-algebra
/// op took the word-parallel dense path is a representation detail of
/// the arena, not of the derivation, and the differential suites assert
/// stats equality across backends that do and don't have an arena at
/// all. Everything a §3 derivation determines — sizes, node counts,
/// rule counters, frontiers — still compares exactly.
#[derive(Debug, Clone, Default, Eq)]
pub struct EvalStats {
    /// The paper's complexity: the size of the largest complex object
    /// occurring anywhere in the derivation tree.
    pub max_object_size: u64,
    /// Number of rule applications (nodes of the derivation tree).
    pub nodes: u64,
    /// Sum of the sizes of all complex objects observed at derivation
    /// nodes (inputs and outputs both count, as both "occur" in a node).
    pub total_size: u64,
    /// Largest set cardinality observed.
    pub max_set_cardinality: u64,
    /// Rule applications per primitive (keys are `Expr::head_name`s).
    pub rule_counts: BTreeMap<&'static str, u64>,
    /// Iterations performed by `while` sub-evaluations.
    pub while_iterations: u64,
    /// Apply-cache hits (only nonzero under
    /// [`EvalConfig::memo`](crate::error::EvalConfig::memo)). Hits are
    /// reported *separately* rather than inflating the §3 counters: a
    /// hit contributes nothing to `nodes`, `total_size`, or
    /// `max_object_size` — the skipped sub-derivation was never built.
    pub memo_hits: u64,
    /// Apply-cache misses — evaluations that ran the derivation and
    /// populated the cache. Only nonzero under `EvalConfig::memo`.
    pub memo_misses: u64,
    /// The subset of `memo_hits` served by entries written by an
    /// **earlier query of the same session** (cross-query warm starts).
    /// Always 0 through the free-function facade, which opens a fresh
    /// cache epoch per call; a `session::EvalSession` keeps its apply
    /// cache across `eval` calls and re-derivations of judgments already
    /// seen by previous queries land here.
    pub warm_hits: u64,
    /// Number of `map`/`μ` applications served incrementally by the
    /// semi-naive delta rules (only nonzero under
    /// [`EvalConfig::semi_naive`](crate::error::EvalConfig::semi_naive)):
    /// the rule's input was a superset of its previous input, so the
    /// body ran on the frontier only and the previous result was folded
    /// in by a sorted merge.
    pub delta_hits: u64,
    /// Element sub-derivations skipped by those incremental
    /// applications. Like `memo_hits`, skips are reported *separately*:
    /// they contribute nothing to `nodes`/`total_size`/
    /// `max_object_size` (every skipped object already occurred, and
    /// was observed, earlier in the same evaluation), but their
    /// recorded cost still counts against
    /// [`EvalConfig::max_nodes`](crate::error::EvalConfig::max_nodes).
    pub delta_skipped: u64,
    /// Frontier cardinality per `while` iteration — `|cₖ₊₁ ∖ cₖ|` for
    /// each iterate, in order (the `(total, delta)` pair the semi-naive
    /// `while` rule threads; the final entry is 0, the fixpoint test).
    /// Recorded only under `EvalConfig::semi_naive`, and only for
    /// set-valued iterates.
    pub while_frontiers: Vec<u64>,
    /// Set-algebra operations served by the arena's word-parallel dense
    /// bitmap path (union/intersection/difference/subset/contains/
    /// merge) during this evaluation. Excluded from equality: a
    /// representation counter, not a derivation fact.
    pub dense_ops: u64,
    /// Dense sidecars built by the arena during this evaluation —
    /// promotions of a sorted spine to the packed-words representation
    /// (including stride-widening re-promotions). Excluded from
    /// equality, like `dense_ops`.
    pub dense_promotions: u64,
}

impl PartialEq for EvalStats {
    fn eq(&self, other: &Self) -> bool {
        // every field except dense_ops / dense_promotions
        self.max_object_size == other.max_object_size
            && self.nodes == other.nodes
            && self.total_size == other.total_size
            && self.max_set_cardinality == other.max_set_cardinality
            && self.rule_counts == other.rule_counts
            && self.while_iterations == other.while_iterations
            && self.memo_hits == other.memo_hits
            && self.memo_misses == other.memo_misses
            && self.warm_hits == other.warm_hits
            && self.delta_hits == other.delta_hits
            && self.delta_skipped == other.delta_skipped
            && self.while_frontiers == other.while_frontiers
    }
}

impl EvalStats {
    /// Record an object of the given size and cardinality occurring at a
    /// derivation node.
    pub(crate) fn observe_object(&mut self, size: u64, cardinality: Option<usize>) {
        self.max_object_size = self.max_object_size.max(size);
        self.total_size = self.total_size.saturating_add(size);
        if let Some(card) = cardinality {
            self.max_set_cardinality = self.max_set_cardinality.max(card as u64);
        }
    }

    /// `log₂` of the complexity, the quantity whose growth-in-`n` slope the
    /// experiments fit (Theorem 4.1 predicts slope ≥ c > 0 for TC queries).
    pub fn log2_complexity(&self) -> f64 {
        (self.max_object_size as f64).log2()
    }

    /// Apply-cache hit rate `hits / (hits + misses)`, or 0 when the
    /// cache never ran (memo off).
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observes_max_and_total() {
        let mut s = EvalStats::default();
        s.observe_object(5, None);
        s.observe_object(3, Some(2));
        s.observe_object(4, Some(7));
        assert_eq!(s.max_object_size, 5);
        assert_eq!(s.total_size, 12);
        assert_eq!(s.max_set_cardinality, 7);
    }

    #[test]
    fn equality_ignores_dense_counters() {
        let mut a = EvalStats::default();
        let b = EvalStats {
            dense_ops: 17,
            dense_promotions: 3,
            ..EvalStats::default()
        };
        assert_eq!(a, b, "dense_* are representation, not derivation");
        a.nodes = 1;
        assert_ne!(a, b, "derivation fields still compare");
    }

    #[test]
    fn log2() {
        let mut s = EvalStats::default();
        s.observe_object(1024, None);
        assert!((s.log2_complexity() - 10.0).abs() < 1e-9);
    }
}
