//! The differential suite's randomized graph families, in one place.
//!
//! Both differential harnesses — the route-level one at
//! `tests/differential.rs` and the strategy-level one at
//! `crates/eval/tests/differential.rs` — exercise the same seven graph
//! families. The builders used to be copy-pasted between the two files;
//! they live here instead, as plain edge lists (this crate depends on
//! nothing), so a new family lands in both harnesses automatically.
//! Harnesses lift an edge list into whatever graph/value representation
//! they test (`DiGraph::from_edges`, `Value::relation`, …).
//!
//! Every family in [`family_graphs`] is edge-count-bounded (≤ 8): the
//! powerset route costs `2^|edges|`, so an unbounded tail would make
//! unlucky seeds pathologically slow. The *large* families
//! ([`road_grid`], [`power_law`], [`two_community`], swept by
//! [`large_family_graphs`] at the [`LARGE_SIZES`]) deliberately break
//! that bound — thousands of edges, to exercise the arena's dense
//! bitmap representation — and must only ever meet polynomial routes.

use crate::Rng;
use std::collections::BTreeSet;

/// One randomized graph: its family tag (for diagnostics) plus the edge
/// list.
#[derive(Debug, Clone)]
pub struct FamilyGraph {
    /// Family name, e.g. `"chain"` — prepend it to assertion messages so
    /// failures identify the family along with the seed.
    pub family: &'static str,
    /// The edges, deduplicated and ordered.
    pub edges: BTreeSet<(u64, u64)>,
}

impl FamilyGraph {
    fn new<I: IntoIterator<Item = (u64, u64)>>(family: &'static str, edges: I) -> Self {
        FamilyGraph {
            family,
            edges: edges.into_iter().collect(),
        }
    }
}

/// A chain `o → o+1 → … → o+n` of random length (possibly empty) at a
/// random label offset, so closure code cannot rely on 0-based ids.
pub fn random_chain(rng: &mut Rng) -> FamilyGraph {
    let n = rng.below(8);
    let o = rng.below(5);
    FamilyGraph::new("chain", (0..n).map(|i| (o + i, o + i + 1)))
}

/// A directed cycle on 1..=7 nodes at a random label offset.
pub fn random_cycle(rng: &mut Rng) -> FamilyGraph {
    let n = rng.range_u64(1, 8);
    let o = rng.below(5);
    FamilyGraph::new("cycle", (0..n).map(|i| (o + i, o + (i + 1) % n)))
}

/// A random DAG: edges only from smaller to larger ids, each present
/// with probability 1/3.
pub fn random_dag(rng: &mut Rng) -> FamilyGraph {
    let n = rng.below(8);
    let mut edges = BTreeSet::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.below(3) == 0 {
                edges.insert((a, b));
            }
        }
    }
    FamilyGraph {
        family: "dag",
        edges,
    }
}

/// A disconnected graph: two independent random components on disjoint
/// label ranges (0..4 and 100..104), so the closure must not invent
/// cross-component paths. Components are edge-count-bounded (≤ 5 each).
pub fn random_disconnected(rng: &mut Rng) -> FamilyGraph {
    let left = rng.relation(4, 5);
    let right = rng.relation(4, 5);
    FamilyGraph::new(
        "disconnected",
        left.into_iter()
            .chain(right.into_iter().map(|(a, b)| (a + 100, b + 100))),
    )
}

/// A small directed grid (2×2 or 2×3 — at most 7 edges, powerset-safe)
/// at a random label offset: node `(i, j)` has id `i·cols + j` and edges
/// to its right and down neighbours.
pub fn random_grid(rng: &mut Rng) -> FamilyGraph {
    let (rows, cols) = (2, rng.range_u64(2, 4));
    let o = rng.below(5);
    let mut edges = BTreeSet::new();
    for i in 0..rows {
        for j in 0..cols {
            if j + 1 < cols {
                edges.insert((o + i * cols + j, o + i * cols + j + 1));
            }
            if i + 1 < rows {
                edges.insert((o + i * cols + j, o + (i + 1) * cols + j));
            }
        }
    }
    FamilyGraph {
        family: "grid",
        edges,
    }
}

/// A complete digraph on 1–3 nodes (≤ 6 edges) at a random label offset
/// — already transitively closed except for the self-loops, which the
/// closure must add.
pub fn random_clique(rng: &mut Rng) -> FamilyGraph {
    let n = rng.range_u64(1, 4);
    let o = rng.below(5);
    let mut edges = BTreeSet::new();
    for a in 0..n {
        for b in 0..n {
            if a != b {
                edges.insert((o + a, o + b));
            }
        }
    }
    FamilyGraph {
        family: "clique",
        edges,
    }
}

/// A sparse random relation: ≤ 6 edges over ≤ 5 nodes (self-loops and
/// all), the least structured family in the suite.
pub fn random_sparse(rng: &mut Rng) -> FamilyGraph {
    FamilyGraph::new("sparse", rng.relation(5, 6))
}

/// The node counts the large-graph suites sweep. Chosen so the largest
/// still fits the arena's dense-coordinate bound (node ids stay below
/// `nra_core::value::intern::DENSE_MAX_COORD = 8192`).
pub const LARGE_SIZES: [u64; 3] = [512, 2048, 8192];

/// A road-grid on ~`n` nodes: node `(i, j)` has id `i·cols + j`, with
/// directed edges to its right and down neighbours, and roughly one edge
/// in sixteen removed at random ("potholes") so different seeds give
/// different reachability structure. `rows` is the largest power of two
/// whose square fits `n`, so the standard sizes give 16×32, 32×64 and
/// 64×128 grids.
///
/// **Not powerset-safe**: thousands of edges. Only run polynomial
/// routes (while/semi-naive/compiled) on the large families.
pub fn road_grid(rng: &mut Rng, n: u64) -> FamilyGraph {
    let mut rows = 1u64;
    while (rows * 2) * (rows * 2) <= n {
        rows *= 2;
    }
    let cols = n / rows;
    let mut edges = BTreeSet::new();
    for i in 0..rows {
        for j in 0..cols {
            if j + 1 < cols && rng.below(16) != 0 {
                edges.insert((i * cols + j, i * cols + j + 1));
            }
            if i + 1 < rows && rng.below(16) != 0 {
                edges.insert((i * cols + j, (i + 1) * cols + j));
            }
        }
    }
    FamilyGraph {
        family: "road_grid",
        edges,
    }
}

/// A power-law graph on `n` nodes via preferential attachment: each new
/// node `v` points two edges at targets drawn proportionally to degree
/// (the classic repeated-endpoints trick), so a few early hubs collect
/// most of the in-degree.
///
/// **Not powerset-safe** at the standard sizes — see [`road_grid`].
pub fn power_law(rng: &mut Rng, n: u64) -> FamilyGraph {
    let mut edges = BTreeSet::new();
    let mut endpoints: Vec<u64> = vec![0];
    for v in 1..n {
        for _ in 0..2 {
            let target = *rng.choose(&endpoints);
            if target != v {
                edges.insert((v, target));
                endpoints.push(target);
            }
        }
        endpoints.push(v);
    }
    FamilyGraph {
        family: "power_law",
        edges,
    }
}

/// A two-community social graph on `n` nodes: nodes `0..n/2` and
/// `n/2..n` each form a sparse random community (three out-edges per
/// node, within the community), bridged by a thin band of `n/64 + 2`
/// random cross-community edges — so the closure is dense inside each
/// community but crossings all funnel through the bridge.
///
/// **Not powerset-safe** at the standard sizes — see [`road_grid`].
pub fn two_community(rng: &mut Rng, n: u64) -> FamilyGraph {
    let half = (n / 2).max(1);
    let mut edges = BTreeSet::new();
    for v in 0..n {
        let base = if v < half { 0 } else { half };
        let span = if v < half { half } else { n - half };
        for _ in 0..3 {
            let w = base + rng.below(span.max(1));
            if w != v {
                edges.insert((v, w));
            }
        }
    }
    for _ in 0..(n / 64 + 2) {
        let a = rng.below(half);
        let b = half + rng.below((n - half).max(1));
        if rng.bool() {
            edges.insert((a, b));
        } else {
            edges.insert((b, a));
        }
    }
    FamilyGraph {
        family: "two_community",
        edges,
    }
}

/// One graph from **each** of the three large families at node count
/// `n` — the sweep the dense-vs-sorted differentials and both benches
/// run at the [`LARGE_SIZES`]. Unlike [`family_graphs`], these are
/// thousands of edges: polynomial routes only, never the powerset
/// route.
pub fn large_family_graphs(rng: &mut Rng, n: u64) -> Vec<FamilyGraph> {
    vec![road_grid(rng, n), power_law(rng, n), two_community(rng, n)]
}

/// One graph from **each** of the seven families — the canonical
/// per-seed sweep both differential harnesses run.
pub fn family_graphs(rng: &mut Rng) -> Vec<FamilyGraph> {
    vec![
        random_chain(rng),
        random_cycle(rng),
        random_dag(rng),
        random_disconnected(rng),
        random_grid(rng),
        random_clique(rng),
        random_sparse(rng),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_families_with_bounded_edge_counts() {
        for seed in 0..50 {
            let mut rng = Rng::new(seed);
            let graphs = family_graphs(&mut rng);
            assert_eq!(graphs.len(), 7);
            let names: Vec<&str> = graphs.iter().map(|g| g.family).collect();
            assert_eq!(
                names,
                [
                    "chain",
                    "cycle",
                    "dag",
                    "disconnected",
                    "grid",
                    "clique",
                    "sparse"
                ]
            );
            for g in &graphs {
                assert!(
                    g.edges.len() <= 10,
                    "{} grew to {} edges (powerset-unsafe)",
                    g.family,
                    g.edges.len()
                );
            }
        }
    }

    #[test]
    fn families_are_deterministic_in_the_seed() {
        let a: Vec<_> = family_graphs(&mut Rng::new(42))
            .into_iter()
            .map(|g| g.edges)
            .collect();
        let b: Vec<_> = family_graphs(&mut Rng::new(42))
            .into_iter()
            .map(|g| g.edges)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn large_families_fit_the_dense_domain() {
        for seed in 0..3 {
            let mut rng = Rng::new(seed);
            let graphs = large_family_graphs(&mut rng, 512);
            let names: Vec<&str> = graphs.iter().map(|g| g.family).collect();
            assert_eq!(names, ["road_grid", "power_law", "two_community"]);
            for g in &graphs {
                assert!(
                    g.edges.iter().all(|&(a, b)| a < 512 && b < 512),
                    "{}: node ids must stay below n",
                    g.family
                );
                assert!(
                    g.edges.len() >= 512,
                    "{}: expected a large edge set, got {}",
                    g.family,
                    g.edges.len()
                );
                assert!(g.edges.iter().all(|&(a, b)| a != b), "no self-loops");
            }
        }
    }

    #[test]
    fn large_families_are_deterministic_in_the_seed() {
        let a: Vec<_> = large_family_graphs(&mut Rng::new(9), 512)
            .into_iter()
            .map(|g| g.edges)
            .collect();
        let b: Vec<_> = large_family_graphs(&mut Rng::new(9), 512)
            .into_iter()
            .map(|g| g.edges)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn two_community_bridges_are_thin() {
        let mut rng = Rng::new(11);
        let g = two_community(&mut rng, 512);
        let cross = g
            .edges
            .iter()
            .filter(|&&(a, b)| (a < 256) != (b < 256))
            .count();
        assert!(cross > 0, "communities must be bridged");
        assert!(cross <= 10, "bridge band stays thin, got {cross}");
    }

    #[test]
    fn power_law_grows_hubs() {
        let mut rng = Rng::new(3);
        let g = power_law(&mut rng, 512);
        // in-degree concentrates: some hub collects far more than the
        // mean in-degree of ~2
        let mut indeg = vec![0u64; 512];
        for &(_, b) in &g.edges {
            indeg[b as usize] += 1;
        }
        let max = indeg.iter().max().copied().unwrap();
        assert!(max >= 10, "expected a hub, max in-degree {max}");
    }

    #[test]
    fn structural_sanity() {
        let mut rng = Rng::new(7);
        for _ in 0..30 {
            let dag = random_dag(&mut rng);
            assert!(dag.edges.iter().all(|&(a, b)| a < b), "dag edges ascend");
            let clique = random_clique(&mut rng);
            assert!(clique.edges.iter().all(|&(a, b)| a != b), "no self-loops");
            let disc = random_disconnected(&mut rng);
            assert!(
                disc.edges.iter().all(|&(a, b)| (a < 100) == (b < 100)),
                "components stay disjoint: {:?}",
                disc.edges
            );
        }
    }
}
