//! The differential suite's randomized graph families, in one place.
//!
//! Both differential harnesses — the route-level one at
//! `tests/differential.rs` and the strategy-level one at
//! `crates/eval/tests/differential.rs` — exercise the same seven graph
//! families. The builders used to be copy-pasted between the two files;
//! they live here instead, as plain edge lists (this crate depends on
//! nothing), so a new family lands in both harnesses automatically.
//! Harnesses lift an edge list into whatever graph/value representation
//! they test (`DiGraph::from_edges`, `Value::relation`, …).
//!
//! Every family is edge-count-bounded (≤ 8): the powerset route costs
//! `2^|edges|`, so an unbounded tail would make unlucky seeds
//! pathologically slow.

use crate::Rng;
use std::collections::BTreeSet;

/// One randomized graph: its family tag (for diagnostics) plus the edge
/// list.
#[derive(Debug, Clone)]
pub struct FamilyGraph {
    /// Family name, e.g. `"chain"` — prepend it to assertion messages so
    /// failures identify the family along with the seed.
    pub family: &'static str,
    /// The edges, deduplicated and ordered.
    pub edges: BTreeSet<(u64, u64)>,
}

impl FamilyGraph {
    fn new<I: IntoIterator<Item = (u64, u64)>>(family: &'static str, edges: I) -> Self {
        FamilyGraph {
            family,
            edges: edges.into_iter().collect(),
        }
    }
}

/// A chain `o → o+1 → … → o+n` of random length (possibly empty) at a
/// random label offset, so closure code cannot rely on 0-based ids.
pub fn random_chain(rng: &mut Rng) -> FamilyGraph {
    let n = rng.below(8);
    let o = rng.below(5);
    FamilyGraph::new("chain", (0..n).map(|i| (o + i, o + i + 1)))
}

/// A directed cycle on 1..=7 nodes at a random label offset.
pub fn random_cycle(rng: &mut Rng) -> FamilyGraph {
    let n = rng.range_u64(1, 8);
    let o = rng.below(5);
    FamilyGraph::new("cycle", (0..n).map(|i| (o + i, o + (i + 1) % n)))
}

/// A random DAG: edges only from smaller to larger ids, each present
/// with probability 1/3.
pub fn random_dag(rng: &mut Rng) -> FamilyGraph {
    let n = rng.below(8);
    let mut edges = BTreeSet::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.below(3) == 0 {
                edges.insert((a, b));
            }
        }
    }
    FamilyGraph {
        family: "dag",
        edges,
    }
}

/// A disconnected graph: two independent random components on disjoint
/// label ranges (0..4 and 100..104), so the closure must not invent
/// cross-component paths. Components are edge-count-bounded (≤ 5 each).
pub fn random_disconnected(rng: &mut Rng) -> FamilyGraph {
    let left = rng.relation(4, 5);
    let right = rng.relation(4, 5);
    FamilyGraph::new(
        "disconnected",
        left.into_iter()
            .chain(right.into_iter().map(|(a, b)| (a + 100, b + 100))),
    )
}

/// A small directed grid (2×2 or 2×3 — at most 7 edges, powerset-safe)
/// at a random label offset: node `(i, j)` has id `i·cols + j` and edges
/// to its right and down neighbours.
pub fn random_grid(rng: &mut Rng) -> FamilyGraph {
    let (rows, cols) = (2, rng.range_u64(2, 4));
    let o = rng.below(5);
    let mut edges = BTreeSet::new();
    for i in 0..rows {
        for j in 0..cols {
            if j + 1 < cols {
                edges.insert((o + i * cols + j, o + i * cols + j + 1));
            }
            if i + 1 < rows {
                edges.insert((o + i * cols + j, o + (i + 1) * cols + j));
            }
        }
    }
    FamilyGraph {
        family: "grid",
        edges,
    }
}

/// A complete digraph on 1–3 nodes (≤ 6 edges) at a random label offset
/// — already transitively closed except for the self-loops, which the
/// closure must add.
pub fn random_clique(rng: &mut Rng) -> FamilyGraph {
    let n = rng.range_u64(1, 4);
    let o = rng.below(5);
    let mut edges = BTreeSet::new();
    for a in 0..n {
        for b in 0..n {
            if a != b {
                edges.insert((o + a, o + b));
            }
        }
    }
    FamilyGraph {
        family: "clique",
        edges,
    }
}

/// A sparse random relation: ≤ 6 edges over ≤ 5 nodes (self-loops and
/// all), the least structured family in the suite.
pub fn random_sparse(rng: &mut Rng) -> FamilyGraph {
    FamilyGraph::new("sparse", rng.relation(5, 6))
}

/// One graph from **each** of the seven families — the canonical
/// per-seed sweep both differential harnesses run.
pub fn family_graphs(rng: &mut Rng) -> Vec<FamilyGraph> {
    vec![
        random_chain(rng),
        random_cycle(rng),
        random_dag(rng),
        random_disconnected(rng),
        random_grid(rng),
        random_clique(rng),
        random_sparse(rng),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_families_with_bounded_edge_counts() {
        for seed in 0..50 {
            let mut rng = Rng::new(seed);
            let graphs = family_graphs(&mut rng);
            assert_eq!(graphs.len(), 7);
            let names: Vec<&str> = graphs.iter().map(|g| g.family).collect();
            assert_eq!(
                names,
                [
                    "chain",
                    "cycle",
                    "dag",
                    "disconnected",
                    "grid",
                    "clique",
                    "sparse"
                ]
            );
            for g in &graphs {
                assert!(
                    g.edges.len() <= 10,
                    "{} grew to {} edges (powerset-unsafe)",
                    g.family,
                    g.edges.len()
                );
            }
        }
    }

    #[test]
    fn families_are_deterministic_in_the_seed() {
        let a: Vec<_> = family_graphs(&mut Rng::new(42))
            .into_iter()
            .map(|g| g.edges)
            .collect();
        let b: Vec<_> = family_graphs(&mut Rng::new(42))
            .into_iter()
            .map(|g| g.edges)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn structural_sanity() {
        let mut rng = Rng::new(7);
        for _ in 0..30 {
            let dag = random_dag(&mut rng);
            assert!(dag.edges.iter().all(|&(a, b)| a < b), "dag edges ascend");
            let clique = random_clique(&mut rng);
            assert!(clique.edges.iter().all(|&(a, b)| a != b), "no self-loops");
            let disc = random_disconnected(&mut rng);
            assert!(
                disc.edges.iter().all(|&(a, b)| (a < 100) == (b < 100)),
                "components stay disjoint: {:?}",
                disc.edges
            );
        }
    }
}
