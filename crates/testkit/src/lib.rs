//! # nra-testkit
//!
//! A self-contained property-testing kit used across the workspace's
//! randomized test suites: a seeded deterministic RNG (SplitMix64), small
//! collection generators, and a case runner that reports the failing seed
//! so every failure is reproducible from its panic message alone.
//!
//! This is a deliberate offline stand-in for `proptest`: the build must
//! not require any network-fetched dependency, and the properties under
//! test here (agreement between evaluators, algebraic laws, brute-force
//! cross-checks) need plain randomized case generation rather than
//! shrinking.

#![deny(missing_docs)]

pub mod graphs;

use std::collections::BTreeSet;

/// A tiny deterministic RNG (SplitMix64). The same algorithm as
/// `nra_core::generate::Rng`, re-exposed here with a public sampling API
/// so test crates that do not depend on `nra-core` can use it too.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeded construction. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..bound` (`bound = 0` yields 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// Uniform in the half-open range `lo..hi` (requires `lo < hi`).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform in the half-open range `lo..hi` over signed integers.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as i64
    }

    /// Uniform in `0..bound` as a `usize` (`bound = 0` yields 0).
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A random set of naturals drawn from `0..elem_bound`, with up to
    /// `max_len` insertion attempts (the result may be smaller after
    /// deduplication — matching set semantics).
    pub fn nat_set(&mut self, elem_bound: u64, max_len: usize) -> BTreeSet<u64> {
        let len = self.usize_below(max_len + 1);
        (0..len).map(|_| self.below(elem_bound)).collect()
    }

    /// A random binary relation over `0..node_bound` with up to
    /// `max_edges` insertion attempts.
    pub fn relation(&mut self, node_bound: u64, max_edges: usize) -> BTreeSet<(u64, u64)> {
        let len = self.usize_below(max_edges + 1);
        (0..len)
            .map(|_| (self.below(node_bound), self.below(node_bound)))
            .collect()
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.usize_below(items.len())]
    }
}

/// Run `cases` independent property checks, each with a fresh seeded RNG.
/// On panic, re-panics with the property name and seed prepended, so the
/// failure reproduces with `Rng::new(seed)`.
pub fn check<F: FnMut(u64, &mut Rng)>(name: &str, cases: u64, mut property: F) {
    for seed in 0..cases {
        let mut rng = Rng::new(seed);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(seed, &mut rng)));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property `{name}` failed at seed {seed}: {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounds_are_respected() {
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
            let x = rng.range_u64(5, 8);
            assert!((5..8).contains(&x));
            let y = rng.range_i64(-3, 4);
            assert!((-3..4).contains(&y));
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn collections_fit_their_bounds() {
        let mut rng = Rng::new(2);
        for _ in 0..100 {
            let s = rng.nat_set(12, 8);
            assert!(s.len() <= 8);
            assert!(s.iter().all(|&x| x < 12));
            let r = rng.relation(6, 9);
            assert!(r.len() <= 9);
            assert!(r.iter().all(|&(a, b)| a < 6 && b < 6));
        }
    }

    #[test]
    fn check_reports_seed() {
        let result = std::panic::catch_unwind(|| {
            check("always_fails", 3, |seed, _rng| {
                if seed == 2 {
                    panic!("boom");
                }
            })
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("seed 2"), "{msg}");
        assert!(msg.contains("always_fails"), "{msg}");
    }
}
