//! Cross-crate integration tests: the same mathematical objects traced
//! through the language, the eager evaluator, the symbolic machinery, the
//! circuits and the graph baselines — every pair of pipelines must agree.

use powerset_tc::circuits::relalg;
use powerset_tc::core::{builder, derived, output_type, queries, Type, Value};
use powerset_tc::eval::{evaluate, EvalConfig, EvalError};
use powerset_tc::graph::{graph_to_value, tc, DiGraph};
use powerset_tc::symbolic::{
    apply, chain_aexpr, chain_tc_impossibility, AExpr, Env, SetCardinality, SymCtx, SymbolicError,
    VarGen,
};

/// The theorem's pipeline, end to end: the symbolic dichotomy predicts the
/// exponential blow-up that the concrete evaluator then measures.
#[test]
fn theorem_4_1_prediction_matches_measurement() {
    // 1. symbolically: powerset over the chain's abstract expression is
    //    refused with an Ω(n) certificate (Lemma 5.8, case 2)
    let mut gen = VarGen::new();
    let chain = chain_aexpr(&mut gen);
    let mut ctx = SymCtx::with_dichotomy(&chain, 32);
    let verdict = apply(&builder::powerset(), &chain, &mut ctx);
    assert!(matches!(
        verdict,
        Err(SymbolicError::ExponentialPowerset(_))
    ));

    // 2. concretely: the measured complexity of the TC query doubles with
    //    every n (2^{cn} with c ≈ 1)
    let cfg = EvalConfig::default();
    let mut last = None;
    for n in 5..10u64 {
        let ev = evaluate(&queries::tc_paths(), &Value::chain(n), &cfg);
        let c = ev.stats.max_object_size as f64;
        if let Some(prev) = last {
            let ratio: f64 = c / prev;
            assert!(ratio > 1.7 && ratio < 2.4, "n={n}: ratio {ratio}");
        }
        last = Some(c);
    }
}

/// Proposition 4.2 across crates: the dichotomy's bounded verdict names
/// the same m at which the concrete approximations become exact.
#[test]
fn prop_4_2_bounded_case_agrees_concretely() {
    // the bounded abstract set {3} ∪ {n} has m = 2 witnesses
    let bounded = AExpr::union(
        AExpr::singleton(AExpr::num(3)),
        AExpr::singleton(AExpr::Num(powerset_tc::symbolic::SimpleExpr::n())),
    );
    let SetCardinality::Bounded { witnesses } =
        powerset_tc::symbolic::analyze_cardinality(&bounded).unwrap()
    else {
        panic!("expected bounded");
    };
    assert_eq!(witnesses.len(), 2);
    // concretely: powerset == powerset_m at m = 2 on the denoted sets
    for n in 4..9u64 {
        let base = bounded.eval(n, &Env::new()).unwrap();
        let full = powerset_tc::eval::eval(&builder::powerset(), &base).unwrap();
        let approx = powerset_tc::eval::eval(&builder::powerset_m_prim(2), &base).unwrap();
        assert_eq!(full, approx, "n={n}");
    }
}

/// Lemma 5.1 and the eager evaluator agree on open expressions through
/// derived operations.
#[test]
fn evaluation_lemma_through_derived_operations() {
    let mut gen = VarGen::new();
    let chain = chain_aexpr(&mut gen);
    let e = Type::prod(Type::Nat, Type::Nat);
    let fs = [
        derived::select(derived::neq_nat(), e.clone()),
        derived::rel_nodes(),
        builder::compose(derived::proj1(), queries::compose_rel()),
    ];
    for f in &fs {
        let mut ctx = SymCtx::for_expr(&chain);
        let a2 = apply(f, &chain, &mut ctx).unwrap();
        for n in 1..7u64 {
            let concrete = powerset_tc::eval::eval(f, &Value::chain(n)).unwrap();
            assert_eq!(a2.eval(n, &Env::new()), Some(concrete), "{f} at n={n}");
        }
    }
}

/// The circuit compiler, the flat reference semantics, the NRA evaluator
/// and the graph baselines all agree on one TC round.
#[test]
fn four_way_agreement_on_one_tc_round() {
    for seed in 0..5u64 {
        let g = DiGraph::random(5, 0.3, seed);
        let d = 5;
        // graph-level: one round of semi-naive = edges ∪ (edges ∘ edges)
        let mut expect = std::collections::BTreeSet::new();
        for (a, b) in g.edges() {
            expect.insert((a, b));
            for (c, dd) in g.edges() {
                if b == c {
                    expect.insert((a, dd));
                }
            }
        }
        // NRA evaluator
        let nra_out = powerset_tc::eval::eval(&queries::tc_step(), &graph_to_value(&g)).unwrap();
        let nra_edges: std::collections::BTreeSet<(u64, u64)> =
            nra_out.to_edges().unwrap().into_iter().collect();
        assert_eq!(nra_edges, expect, "NRA, seed {seed}");
        // flat reference semantics
        let rel: std::collections::BTreeSet<Vec<u64>> =
            g.edges().map(|(a, b)| vec![a, b]).collect();
        let flat = relalg::tc_step_query().eval(std::slice::from_ref(&rel), d);
        let flat_edges: std::collections::BTreeSet<(u64, u64)> =
            flat.iter().map(|t| (t[0], t[1])).collect();
        assert_eq!(flat_edges, expect, "flat, seed {seed}");
        // compiled circuit
        let compiled = relalg::compile(&relalg::tc_step_query(), &[2], d);
        let circ = compiled.run(std::slice::from_ref(&rel));
        assert_eq!(circ, flat, "circuit, seed {seed}");
    }
}

/// Iterating the circuit-checked step reaches the classical closure.
#[test]
fn iterated_steps_reach_the_closure() {
    let g = DiGraph::chain(6);
    let mut current = graph_to_value(&g);
    for _ in 0..6 {
        current = powerset_tc::eval::eval(&queries::tc_step(), &current).unwrap();
    }
    assert_eq!(current, graph_to_value(&tc(&g)));
    assert_eq!(current, Value::chain_tc(6));
}

/// Corollary 5.3's analysis agrees with brute-force cardinalities.
#[test]
fn corollary_5_3_numeric_cross_check() {
    let mut gen = VarGen::new();
    let chain = chain_aexpr(&mut gen);
    let analysis = chain_tc_impossibility(&chain).unwrap();
    for n in 4..10u64 {
        let denoted = chain.eval(n, &Env::new()).unwrap().cardinality().unwrap() as u128;
        assert!(denoted <= analysis.cardinality_upper_bound(n), "n={n}");
        // and the denotation never equals tc(rₙ)
        assert_ne!(chain.eval(n, &Env::new()).unwrap(), Value::chain_tc(n));
    }
}

/// Budgets make the lower bound *operational*: under any budget B, the
/// powerset TC query fails on all chains with 2^n ≳ B while the while
/// query still succeeds.
#[test]
fn budget_separation() {
    // while-TC's largest object is Θ(n⁴) (measured 1.51M units at n=30);
    // the powerset route needs ≈ 2ⁿ·3n/2 (7.3M at n=18, ≈5·10¹⁰ at n=30).
    // A 2·10⁶ budget separates them on the whole range.
    let budget = 2_000_000u64;
    let cfg = EvalConfig::with_space_budget(budget);
    for n in [18u64, 24, 30] {
        let p = evaluate(&queries::tc_paths(), &Value::chain(n), &cfg);
        assert!(
            matches!(p.result, Err(EvalError::SpaceBudgetExceeded { .. })),
            "powerset at n={n} must exceed {budget}"
        );
        let w = evaluate(&queries::tc_while(), &Value::chain(n), &cfg);
        assert!(w.result.is_ok(), "while at n={n} fits in {budget}");
        assert_eq!(w.result.unwrap(), Value::chain_tc(n));
    }
}

/// All public queries type-check at the advertised type.
#[test]
fn public_queries_typecheck() {
    for q in [
        queries::tc_paths(),
        queries::tc_naive(),
        queries::tc_while(),
        queries::siblings_powerset(),
        queries::siblings_direct(),
    ] {
        assert_eq!(output_type(&q, &Type::nat_rel()).unwrap(), Type::nat_rel());
    }
}
