//! The differential test harness: every route to the transitive closure —
//! the eager powerset query (`tc_paths`), the `while` query (`tc_while`),
//! their memoised (apply-cache) and compiled (bytecode VM) evaluations,
//! the streaming (lazy) evaluator, and the classical `nra-graph`
//! baselines (Warshall,
//! semi-naive, per-source BFS) — must agree on randomized graphs from
//! seven families (chains, cycles, DAGs, disconnected graphs, grids,
//! cliques, sparse random graphs) with up to ~8 nodes.
//!
//! On top of route agreement, the §3 complexity measure must *certify the
//! paper's separation*: on the chains `rₙ`, the eager powerset route costs
//! `max_object_size ≥ 2ⁿ` while the while-loop route stays polynomial
//! (Theorem 4.1 vs the §4 upper bounds).

use nra_testkit::check;
use powerset_tc::core::{queries, Value};
use powerset_tc::eval::{evaluate, evaluate_lazy, EvalConfig};
use powerset_tc::graph::{
    bfs_per_source, graph_to_value, semi_naive, value_to_graph, warshall, DiGraph,
};

/// Node-count ceiling for the randomized graphs: the powerset route
/// enumerates all `2^|nodes|` subsets, so n≈8 keeps a single case around
/// a few hundred subsets while still exercising every rule.
const MAX_N: u64 = 8;

const CASES: u64 = 24;

/// Lift one of the shared `nra_testkit::graphs` family builders (the
/// same definitions the strategy-level harness at
/// `crates/eval/tests/differential.rs` uses, so the two suites can
/// never drift apart) to a `DiGraph`.
fn lift(g: nra_testkit::graphs::FamilyGraph) -> DiGraph {
    DiGraph::from_edges(g.edges)
}

/// The heart of the harness: compute the closure along every route and
/// require bit-for-bit agreement.
fn assert_all_routes_agree(g: &DiGraph, label: &str) {
    // classical baselines agree among themselves…
    let baseline = warshall(g);
    assert_eq!(baseline, semi_naive(g), "warshall vs semi-naive on {label}");
    assert_eq!(baseline, bfs_per_source(g), "warshall vs BFS on {label}");

    let expect = graph_to_value(&baseline);
    let input = graph_to_value(g);
    let cfg = EvalConfig::default();

    // …and with the eager powerset route…
    let eager_paths = evaluate(&queries::tc_paths(), &input, &cfg)
        .result
        .unwrap_or_else(|e| panic!("tc_paths failed on {label}: {e}"));
    assert_eq!(eager_paths, expect, "tc_paths vs baselines on {label}");

    // …the while route…
    let eager_while = evaluate(&queries::tc_while(), &input, &cfg)
        .result
        .unwrap_or_else(|e| panic!("tc_while failed on {label}: {e}"));
    assert_eq!(eager_while, expect, "tc_while vs baselines on {label}");

    // …the streaming evaluator on the powerset route…
    let lazy_paths = evaluate_lazy(&queries::tc_paths(), &input, &cfg)
        .result
        .unwrap_or_else(|e| panic!("lazy tc_paths failed on {label}: {e}"));
    assert_eq!(lazy_paths, expect, "lazy tc_paths vs baselines on {label}");

    // …the memoised (apply-cache), semi-naive (delta-driven),
    // fully-optimised, and compiled (bytecode VM) evaluations of both
    // routes, which must all be bit-for-bit the default results…
    for (mode, cfg) in [
        ("memoised", EvalConfig::memoised()),
        ("semi-naive", EvalConfig::semi_naive()),
        ("optimised", EvalConfig::optimised()),
        ("compiled", EvalConfig::compiled()),
    ] {
        for (route, q) in [
            ("tc_paths", queries::tc_paths()),
            ("tc_while", queries::tc_while()),
        ] {
            let got = evaluate(&q, &input, &cfg)
                .result
                .unwrap_or_else(|e| panic!("{mode} {route} failed on {label}: {e}"));
            assert_eq!(got, expect, "{mode} {route} vs baselines on {label}");
        }
    }

    // …the semi-naive runs iterate the exact naive trajectory…
    let naive_while = evaluate(&queries::tc_while(), &input, &cfg);
    let semi_while = evaluate(&queries::tc_while(), &input, &EvalConfig::semi_naive());
    assert_eq!(
        naive_while.stats.while_iterations, semi_while.stats.while_iterations,
        "semi-naive while_iterations must be exact on {label}"
    );

    // …and the streaming evaluator with the shared apply cache agrees
    // with its uncached self.
    let lazy_cached = evaluate_lazy(&queries::tc_paths(), &input, &EvalConfig::memoised())
        .result
        .unwrap_or_else(|e| panic!("cached lazy tc_paths failed on {label}: {e}"));
    assert_eq!(lazy_cached, expect, "cached lazy tc_paths on {label}");

    // the encoding round-trips, so the comparison was about real graphs
    assert_eq!(
        value_to_graph(&expect).as_ref(),
        Some(&baseline),
        "closure round-trip on {label}"
    );
}

#[test]
fn differential_chains() {
    check("differential_chains", CASES, |seed, rng| {
        assert_all_routes_agree(
            &lift(nra_testkit::graphs::random_chain(rng)),
            &format!("chain (seed {seed})"),
        );
    });
}

#[test]
fn differential_cycles() {
    check("differential_cycles", CASES, |seed, rng| {
        assert_all_routes_agree(
            &lift(nra_testkit::graphs::random_cycle(rng)),
            &format!("cycle (seed {seed})"),
        );
    });
}

#[test]
fn differential_dags() {
    check("differential_dags", CASES, |seed, rng| {
        assert_all_routes_agree(
            &lift(nra_testkit::graphs::random_dag(rng)),
            &format!("dag (seed {seed})"),
        );
    });
}

#[test]
fn differential_disconnected() {
    check("differential_disconnected", CASES, |seed, rng| {
        assert_all_routes_agree(
            &lift(nra_testkit::graphs::random_disconnected(rng)),
            &format!("disconnected (seed {seed})"),
        );
    });
}

#[test]
fn differential_grids() {
    check("differential_grids", CASES, |seed, rng| {
        assert_all_routes_agree(
            &lift(nra_testkit::graphs::random_grid(rng)),
            &format!("grid (seed {seed})"),
        );
    });
}

#[test]
fn differential_cliques() {
    check("differential_cliques", CASES, |seed, rng| {
        assert_all_routes_agree(
            &lift(nra_testkit::graphs::random_clique(rng)),
            &format!("clique (seed {seed})"),
        );
    });
}

#[test]
fn differential_sparse() {
    check("differential_sparse", CASES, |seed, rng| {
        assert_all_routes_agree(
            &lift(nra_testkit::graphs::random_sparse(rng)),
            &format!("sparse (seed {seed})"),
        );
    });
}

/// Theorem 4.1, measured: on every chain `rₙ` up to n = 8 the eager
/// powerset route's §3 complexity is at least `2ⁿ`, while the while-loop
/// route stays under a small polynomial — the separation the paper is
/// about, certified case by case.
#[test]
fn chain_separation_is_certified_pointwise() {
    let cfg = EvalConfig::default();
    for n in 1..=MAX_N {
        let input = Value::chain(n);

        let eager = evaluate(&queries::tc_paths(), &input, &cfg);
        assert_eq!(eager.result.unwrap(), Value::chain_tc(n), "n={n}");
        assert!(
            eager.stats.max_object_size >= 1 << n,
            "eager powerset complexity at n={n} is {} < 2^{n}",
            eager.stats.max_object_size
        );

        let while_route = evaluate(&queries::tc_while(), &input, &cfg);
        assert_eq!(while_route.result.unwrap(), Value::chain_tc(n), "n={n}");
        // Θ(n⁴) with a small constant (§4's upper bound for the while
        // route); 8·n⁴ + 64 is a generous ceiling that an exponential
        // blow-up would smash immediately.
        let poly_ceiling = 8 * n.pow(4) + 64;
        assert!(
            while_route.stats.max_object_size <= poly_ceiling,
            "while complexity at n={n} is {} > {poly_ceiling}",
            while_route.stats.max_object_size
        );

        // the streaming strategy dodges the eager measure: its peak
        // resident set also stays under the polynomial ceiling
        let lazy = evaluate_lazy(&queries::tc_paths(), &input, &cfg);
        assert_eq!(lazy.result.unwrap(), Value::chain_tc(n), "n={n}");
        assert!(
            lazy.stats.peak_resident <= poly_ceiling,
            "lazy peak at n={n} is {} > {poly_ceiling}",
            lazy.stats.peak_resident
        );
    }
}

/// The same separation as a growth-rate fit (nra-bench's slope
/// machinery): `log₂(complexity)` grows with slope ≈ 1 per node on the
/// powerset route (i.e. `2^{Θ(n)}`) and with slope ≈ 0 on the while
/// route, whose log-log degree is that of a small polynomial.
#[test]
fn chain_separation_is_certified_by_growth_rate() {
    let ns: Vec<u64> = (3..=MAX_N).collect();
    let powerset_series = nra_bench::chain_series(&queries::tc_paths(), &ns, u64::MAX);
    let c = nra_bench::log2_slope(&powerset_series);
    assert!(
        c > 0.8 && c < 1.5,
        "powerset route: expected exponential slope ≈ 1, got {c}"
    );

    // the while route is polynomial, so it can afford much larger chains —
    // and needs them: at n ≤ 8 even n⁴ has a steep log₂ slope
    let while_series = nra_bench::chain_series(&queries::tc_while(), &[8, 16, 24, 32], u64::MAX);
    let cw = nra_bench::log2_slope(&while_series);
    assert!(
        cw < 0.5,
        "while route: log₂ slope {cw} looks exponential, not polynomial"
    );
    let degree = nra_bench::loglog_slope(&while_series);
    assert!(
        degree < 5.0,
        "while route: polynomial degree ≈ 4 expected, got {degree}"
    );
}

/// Tentpole acceptance: 4-worker batch evaluation is **bit-for-bit**
/// identical to sequential evaluation across all seven graph families —
/// workers intern straight into the parent's shared concurrent store, so
/// canonical interning hands back the *same* result handles with no
/// merge pass, and the same per-query §3 statistics — under both the
/// default and the fully optimised configuration.
#[test]
fn batch_evaluation_matches_sequential_on_all_families() {
    use powerset_tc::eval::{eval_batch, EvalSession};
    check(
        "batch_evaluation_matches_sequential_on_all_families",
        CASES / 2,
        |seed, rng| {
            let graphs: Vec<_> = nra_testkit::graphs::family_graphs(rng)
                .into_iter()
                .map(lift)
                .collect();
            for config in [EvalConfig::default(), EvalConfig::optimised()] {
                let mut session = EvalSession::new(config.clone());
                let q_while = session.intern_expr(&queries::tc_while());
                let q_paths = session.intern_expr(&queries::tc_paths());
                let jobs: Vec<_> = graphs
                    .iter()
                    .flat_map(|g| {
                        let input = session.intern_value(&graph_to_value(g));
                        [(q_while, input), (q_paths, input)]
                    })
                    .collect();
                // sequential reference through an *independent* session,
                // resolved to values so the comparison is representation-free
                let mut reference = EvalSession::new(config.clone());
                let sequential: Vec<Value> = jobs
                    .iter()
                    .map(|&(eid, input)| {
                        let expr = session.exprs().resolve(eid);
                        let value = session.resolve(input);
                        reference.eval(&expr, &value).result.unwrap()
                    })
                    .collect();
                let batched = eval_batch(&mut session, &jobs, 4);
                assert_eq!(batched.len(), jobs.len());
                for (i, (seq, par)) in sequential.iter().zip(&batched).enumerate() {
                    let par_value = session.resolve(*par.result.as_ref().unwrap());
                    assert_eq!(
                        seq, &par_value,
                        "seed {seed}: job {i} (batch vs sequential)"
                    );
                }
                // the graph referee closes the loop: every tc_while job
                // must be the classical closure
                for (g, chunk) in graphs.iter().zip(batched.chunks(2)) {
                    let expect = graph_to_value(&warshall(g));
                    assert_eq!(
                        session.resolve(*chunk[0].result.as_ref().unwrap()),
                        expect,
                        "seed {seed}: batch tc_while vs warshall"
                    );
                }
            }
        },
    );
}
