//! # powerset-tc
//!
//! A full reproduction of
//!
//! > Dan Suciu and Jan Paredaens, *"Any Algorithm in the Complex Object
//! > Algebra with Powerset Needs Exponential Space to Compute Transitive
//! > Closure"*, University of Pennsylvania MS-CIS-94-04, February 1994.
//!
//! The paper proves that although `NRA(powerset)` — the nested relational
//! algebra with a powerset operator — *can* express transitive closure,
//! **every** such expression needs space `Ω(2^{cn})` on the chains
//! `rₙ = {(0,1), …, (n−1,n)}` under the eager evaluation strategy of its
//! §3. This workspace makes the whole development executable:
//!
//! | crate | contents |
//! |---|---|
//! | [`core`] (`nra-core`) | the language: types, complex objects (tree + hash-consed arena, [`core::value::intern`], with merge-based set algebra), hash-consed expressions ([`core::expr::intern`]), the §2 primitives, the Prop 2.1 derived algebra, the TC queries, `powersetₘ` |
//! | [`eval`] (`nra-eval`) | the §3 eager evaluator with the paper's complexity measure, budgets, derivation trees, a streaming (lazy) strategy, and an optional BDD-style apply cache (`EvalConfig::memoised`) — all running on interned handles |
//! | [`graph`] (`nra-graph`) | input generators (chains, cycles, deterministic graphs) and classical polynomial TC baselines |
//! | [`symbolic`] (`nra-symbolic`) | the §5 proof machinery: abstract expressions, the Lemma 5.1 evaluator, affine spaces, quantifier elimination, the Lemma 5.8 dichotomy, the Lemma 5.7 Ramsey bound, Corollary 5.3 |
//! | [`circuits`] (`nra-circuits`) | Prop 4.3's `AC⁰`/`TC⁰` substrate: threshold circuits and a flat-algebra compiler |
//! | [`opt`] (`nra-opt`) | the pre-evaluation rewrite optimiser: cost-gated rules over the hash-consed DAG (`RULES.json` + a ruler-style synthesis harness), and the powerset-route → while-route **TC rescue** — the separation theorem run backwards as an optimisation |
//! | [`serve`] (`nra-serve`) | an offline query-serving front: newline-delimited wire format, **cost-based admission control** (Theorem 4.1 as a safety rail — certified-exponential queries are rejected with their bound; rescuable ones are rewritten and admitted), cache-aware batch scheduling, per-tenant byte budgets riding the eviction generations |
//! | `nra-bench` | measurement helpers (complexity series, slope fits) and the E1–E11 benchmark suite, on a self-contained harness |
//! | `nra-testkit` | seeded RNG + property-check runner used by every randomized test suite |
//!
//! ## Building & testing
//!
//! The workspace has **no external dependencies** — a stock Rust
//! toolchain builds it offline:
//!
//! ```text
//! cargo build --release   # all seven crates + examples
//! cargo test -q           # unit, property, differential and doc tests
//! cargo bench             # E1–E11 timings (NRA_BENCH_SAMPLES=2 for a smoke run)
//! cargo run --release --example quickstart   # and five more walkthroughs
//! ```
//!
//! The differential harness (`tests/differential.rs`) is the heart of the
//! suite: on randomized chains, cycles, DAGs and disconnected graphs it
//! requires the powerset route, the while route, the streaming evaluator
//! and the classical graph baselines to agree bit for bit, and certifies
//! the paper's separation — `max_object_size ≥ 2ⁿ` for eager powerset TC
//! on the chain `rₙ`, polynomial for the while route.
//!
//! ## Quick start
//!
//! ```
//! use powerset_tc::core::{queries, Value};
//! use powerset_tc::eval::{evaluate, EvalConfig};
//!
//! // Transitive closure of the chain r₅ through powerset…
//! let ev = evaluate(&queries::tc_paths(), &Value::chain(5), &EvalConfig::default());
//! assert_eq!(ev.result.unwrap(), Value::chain_tc(5));
//! // …costs exponential space (the §3 complexity measure):
//! assert!(ev.stats.max_object_size > 1 << 5);
//!
//! // The while-loop route gets the same answer polynomially:
//! let ev = evaluate(&queries::tc_while(), &Value::chain(5), &EvalConfig::default());
//! assert_eq!(ev.result.unwrap(), Value::chain_tc(5));
//! ```
//!
//! ## The interned hot path
//!
//! The evaluators run on the hash-consed arena of
//! [`core::value::intern`]: every §3 size observation is an `O(1)`
//! cached-metadata read, and equality — including the `while` fixpoint
//! test — is a handle comparison. Stay on handles end-to-end with
//! [`eval::evaluate_vid`]:
//!
//! ```
//! use powerset_tc::core::{queries, value::intern};
//! use powerset_tc::eval::{evaluate_vid, EvalConfig};
//!
//! let input = intern::chain(6); // r₆, interned — never built as a tree
//! let ev = evaluate_vid(&queries::tc_while(), input, &EvalConfig::default());
//! let out = ev.result.unwrap();
//! assert_eq!(out, intern::chain_tc(6)); // O(1) equality on handles
//! assert_eq!(intern::size(out), 1 + 3 * 21); // O(1) §3 size: 21 closure edges
//! ```
//!
//! ## The apply cache
//!
//! Expressions are hash-consed too ([`core::expr::intern`]), and
//! [`eval::EvalConfig::memoised`] switches the eager evaluator onto a
//! BDD-style apply cache keyed `(EId, VId) → VId`: a judgment already
//! derived returns its cached handle instead of re-running the §3
//! rules, which collapses the repeated body applications inside `while`
//! iterates. Results are bit-for-bit identical; the cache reports its
//! activity separately instead of disturbing the §3 statistics:
//!
//! ```
//! use powerset_tc::core::{queries, Value};
//! use powerset_tc::eval::{evaluate, EvalConfig};
//!
//! let input = Value::chain(6);
//! let plain = evaluate(&queries::tc_while(), &input, &EvalConfig::default());
//! let memo = evaluate(&queries::tc_while(), &input, &EvalConfig::memoised());
//! assert_eq!(plain.result.unwrap(), memo.result.unwrap()); // same closure…
//! assert!(memo.stats.memo_hits > 0); // …with repeated judgments skipped
//! assert_eq!(plain.stats.memo_hits, 0); // memo-off stats stay exact
//! ```

#![deny(missing_docs)]

pub use nra_circuits as circuits;
pub use nra_core as core;
pub use nra_eval as eval;
pub use nra_graph as graph;
pub use nra_opt as opt;
pub use nra_serve as serve;
pub use nra_symbolic as symbolic;
