//! Optimiser demo: the separation theorem run backwards.
//!
//! The powerset-route transitive closure `tc_paths` is certified
//! exponential (Theorem 4.1), so the serving door rejects it on any
//! non-trivial input. `nra-opt` recognises the idiom structurally and
//! rewrites it to the while route (`tc_while`, polynomial) *before*
//! admission — the same query is **rescued**: admitted, evaluated in
//! polynomial space, answered correctly.
//!
//! Run with `cargo run --release --example optimise_demo`.

use powerset_tc::core::{queries, Value};
use powerset_tc::eval::EvalConfig;
use powerset_tc::opt;
use powerset_tc::serve::{spawn, Outcome, ServeConfig};
use powerset_tc::symbolic::classify_space;

fn main() {
    // ── the rewrite itself ──────────────────────────────────────────
    let raw = queries::tc_paths();
    let optimised = opt::optimise_expr(&raw);
    println!("raw query:       {raw}");
    println!("  space class:   {:?}", classify_space(&raw));
    println!("optimised query: {optimised}");
    println!("  space class:   {:?}", classify_space(&optimised));
    assert_eq!(optimised, queries::tc_while());

    // ── without the optimiser: rejected at the door ─────────────────
    let strict = ServeConfig {
        eval: EvalConfig::compiled(),
        ..ServeConfig::default()
    };
    let (mut client, handle) = spawn(strict);
    client
        .submit("alice", 0, &queries::tc_paths(), &Value::chain(24))
        .expect("submit");
    let resp = client.recv().expect("server alive").expect("decode");
    match resp.outcome {
        Outcome::Rejected { reason } => {
            println!("\nwithout optimiser: REJECTED — {reason}");
        }
        other => panic!("expected a rejection, got {other:?}"),
    }
    client.shutdown().expect("shutdown frame");
    handle.join().expect("server thread");

    // ── with the optimiser (the default config): rescued ────────────
    let (mut client, handle) = spawn(ServeConfig::default());
    client
        .submit("alice", 0, &queries::tc_paths(), &Value::chain(24))
        .expect("submit");
    let resp = client.recv().expect("server alive").expect("decode");
    match resp.outcome {
        Outcome::Ok { value, .. } => {
            let edges = match &value {
                Value::Set(edges) => edges.len(),
                _ => 0,
            };
            println!("with optimiser:    OK — {edges} closure edges");
            assert_eq!(value, Value::chain_tc(24));
        }
        other => panic!("expected a rescue, got {other:?}"),
    }
    client.shutdown().expect("shutdown frame");
    let report = handle.join().expect("server thread");
    println!(
        "serving report:    admitted={} rescued={} rejected(exponential)={}",
        report.admitted, report.rescued, report.rejected_exponential
    );
    assert_eq!(report.rescued, 1, "the rescue must be counted");
}
