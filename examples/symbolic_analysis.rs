//! The §5 proof machinery, run as a program.
//!
//! 1. The chain `rₙ` as an abstract expression (one symbolic object
//!    denoting the input *for every n at once*).
//! 2. Lemma 5.1: an `NRA` query applied symbolically to that expression —
//!    one evaluation replaces infinitely many concrete ones.
//! 3. Lemma 5.8: the powerset dichotomy — `powerset(rₙ)` gets an
//!    exponential certificate, a bounded set gets an abstract powerset.
//! 4. Corollary 5.3: the affine-space decomposition showing no abstract
//!    expression denotes `tc(rₙ)`.
//! 5. Lemma 5.7: the Ramsey bound, verified constructively.
//!
//! ```sh
//! cargo run --example symbolic_analysis
//! ```

use powerset_tc::core::{queries, Value};
use powerset_tc::symbolic::{
    apply, chain_aexpr, chain_tc_impossibility, ramsey, AExpr, Env, SymCtx, SymbolicError, VarGen,
};

fn main() {
    let mut gen = VarGen::new();
    let chain = chain_aexpr(&mut gen);
    println!("1. the chain, symbolically:  A = {chain}");
    for n in [3u64, 6] {
        println!("   [A] at n={n}: {}", chain.eval(n, &Env::new()).unwrap());
    }

    // Lemma 5.1: one symbolic evaluation of the TC round r ∪ r∘r.
    let mut ctx = SymCtx::for_expr(&chain);
    let step = queries::tc_step();
    let out = apply(&step, &chain, &mut ctx).expect("NRA evaluates symbolically");
    println!(
        "\n2. Lemma 5.1: (r ∪ r∘r)(A) ⇓ A' with {} block(s);",
        match &out {
            AExpr::Set(blocks) => blocks.len(),
            _ => 0,
        }
    );
    for n in [4u64, 8] {
        let symbolic = out.eval(n, &Env::new()).unwrap();
        let concrete = powerset_tc::eval::eval(&step, &Value::chain(n)).unwrap();
        println!(
            "   n={n}: [A']ρ = concrete evaluation? {}  ({} pairs)",
            symbolic == concrete,
            symbolic.cardinality().unwrap()
        );
    }

    // Lemma 5.8 dichotomy.
    println!("\n3. Lemma 5.8 on powerset:");
    let mut ctx = SymCtx::with_dichotomy(&chain, 16);
    match apply(&powerset_tc::core::builder::powerset(), &chain, &mut ctx) {
        Err(SymbolicError::ExponentialPowerset(cert)) => {
            println!("   powerset(A): Ω(n) elements — certificate: {cert}");
            println!("   ⇒ any evaluation materialising it costs Ω(2^cn)  (Theorem 4.1)");
        }
        other => println!("   unexpected: {other:?}"),
    }
    let bounded = AExpr::union(
        AExpr::singleton(AExpr::num(3)),
        AExpr::singleton(AExpr::Num(powerset_tc::symbolic::SimpleExpr::n())),
    );
    let mut ctx = SymCtx::with_dichotomy(&bounded, 16);
    let p = apply(&powerset_tc::core::builder::powerset(), &bounded, &mut ctx).unwrap();
    println!(
        "   powerset({{3}} ∪ {{n}}): bounded — abstract result with {} subsets",
        match &p {
            AExpr::Set(blocks) => blocks.len(),
            _ => 0,
        }
    );

    // Corollary 5.3.
    println!("\n4. Corollary 5.3 (affine decomposition of A):");
    let analysis = chain_tc_impossibility(&chain).unwrap();
    println!("{}", indent(&analysis.to_string(), "   "));
    for n in [8u64, 16] {
        println!(
            "   n={n}: affine upper bound {} vs |tc(rₙ)| = {}",
            analysis.cardinality_upper_bound(n),
            n * (n + 1) / 2
        );
    }

    // Lemma 5.7.
    println!("\n5. Lemma 5.7 (Ramsey): C(2m−2, m−1) vertices force a monochromatic Kₘ");
    for m in 2..=4u64 {
        let v = ramsey::ramsey_bound(m) as usize;
        let color = |a: usize, b: usize| (a * 31 + b * 17).is_multiple_of(2);
        let (clique, red) = ramsey::monochromatic_clique(v, m as usize, &color).unwrap();
        println!(
            "   m={m}: bound {v}, found {} K_{m} = {:?}",
            if red { "red" } else { "blue" },
            &clique[..m as usize]
        );
    }
}

fn indent(s: &str, pad: &str) -> String {
    s.lines()
        .map(|l| format!("{pad}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
