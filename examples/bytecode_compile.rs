//! The compiled bytecode backend: flatten the hash-consed expression
//! DAG into a register program and execute it on the bytecode VM.
//!
//! `EvalConfig::compiled` lowers each root expression once — a
//! post-order pass over the arena emits one flat routine per unique
//! sub-expression, with `while` loop headers, `if` diamonds and fused
//! superinstructions for the recognised Prop 2.1 shapes — and caches
//! the program per session, so repeated queries pay raw dispatch only.
//! Results, §3 statistics and the fixpoint trajectory are bit-for-bit
//! the interpreter's (the differential harnesses enforce this).
//!
//! ```sh
//! cargo run --release --example bytecode_compile
//! ```

use powerset_tc::core::{queries, Value};
use powerset_tc::eval::{disassemble, EvalConfig, EvalSession};
use std::time::Instant;

fn main() {
    // --- compile and disassemble --------------------------------------
    let mut session = EvalSession::new(EvalConfig::compiled());
    let eid = session.intern_expr(&queries::tc_while());
    let program = session.compiled_program(eid);
    println!(
        "tc_while compiles to {} instructions over {} virtual registers",
        program.len(),
        program.register_count()
    );
    println!();
    let listing = disassemble(&program);
    for line in listing.lines().take(12) {
        println!("    {line}");
    }
    println!("    … ({} more lines)", listing.lines().count() - 12);
    println!();

    // --- execute: same answer, same statistics ------------------------
    let input = Value::chain(12);
    let t = Instant::now();
    let compiled = session.eval(&queries::tc_while(), &input);
    let compiled_wall = t.elapsed();

    let mut interpreter = EvalSession::new(EvalConfig::optimised());
    let t = Instant::now();
    let walked = interpreter.eval(&queries::tc_while(), &input);
    let walked_wall = t.elapsed();

    let closure = compiled.result.unwrap();
    assert_eq!(closure, walked.result.unwrap(), "backends must agree");
    assert_eq!(compiled.stats, walked.stats, "statistics must agree");
    println!(
        "tc_while(r₁₂): {} edges — VM {:?} vs interpreter {:?}",
        closure.cardinality().unwrap(),
        compiled_wall,
        walked_wall
    );
    println!(
        "identical stats: {} nodes, {} while iterations, §3 complexity {}",
        compiled.stats.nodes, compiled.stats.while_iterations, compiled.stats.max_object_size
    );
    println!();

    // --- warm repeat: the program cache + apply cache together --------
    let t = Instant::now();
    let warm = session.eval(&queries::tc_while(), &input);
    let warm_wall = t.elapsed();
    assert_eq!(warm.result.unwrap(), closure);
    println!(
        "warm repeat: {:?} ({} warm hits — the program was reused, the \
         judgment came from the apply cache)",
        warm_wall, warm.stats.warm_hits
    );
}
