//! Proposition 4.2: the `powersetₘ` approximations.
//!
//! For every `f ∈ NRA(powerset)`, either some approximation `fₘ` (every
//! `powerset` replaced by the `NRA`-definable `powersetₘ`) computes the
//! same results on all chains, or `f` costs `Ω(2^{cn})`. This example
//! shows both sides:
//!
//! * for the TC query, `fₘ(rₙ) = f(rₙ)` exactly when `m ≥ n` — no finite
//!   `m` works for every `n` (TC is on the exponential side);
//! * for the `siblings` query, `m = 2` is exact for **all** inputs (the
//!   bounded side), and the query is even expressible without `powerset`
//!   at all — an instance of the paper's closing conjecture.
//!
//! ```sh
//! cargo run --release --example approximation
//! ```

use powerset_tc::core::{derived, queries, Type, Value};
use powerset_tc::eval::eval;
use powerset_tc::graph::{graph_to_value, DiGraph};

fn main() {
    println!("tc_paths vs its m-th approximations on the chain rₙ:");
    println!("(✓ = fₘ(rₙ) = f(rₙ), ✗ = strict under-approximation)\n");
    print!("{:>4}", "n\\m");
    let max_m = 8u64;
    for m in 0..=max_m {
        print!("{m:>3}");
    }
    println!();
    for n in 1..=7u64 {
        let input = Value::chain(n);
        let full = eval(&queries::tc_paths(), &input).unwrap();
        print!("{n:>4}");
        for m in 0..=max_m {
            let approx = eval(&queries::tc_paths_approx(m), &input).unwrap();
            print!("{:>3}", if approx == full { "✓" } else { "✗" });
        }
        println!();
    }
    println!("\nthe diagonal m = n: no finite m is exact for every n (Prop 4.2 ⇒ tc");
    println!("is on the Ω(2^cn) side of the dichotomy).\n");

    println!("siblings(r) = {{(a,c) | (a,b), (c,b) ∈ r, a ≠ c}} through powerset:");
    for seed in 0..4u64 {
        let g = DiGraph::random(5, 0.25, seed);
        let input = graph_to_value(&g);
        let full = eval(&queries::siblings_powerset(), &input).unwrap();
        let at2 = eval(&queries::siblings_approx(2), &input).unwrap();
        let direct = eval(&queries::siblings_direct(), &input).unwrap();
        println!(
            "  random graph #{seed} ({} edges): m=2 exact: {}, powerset-free query agrees: {}",
            g.edge_count(),
            at2 == full,
            direct == full,
        );
    }

    // powersetₘ itself is a plain NRA term (the paper defines it
    // inductively); show the term for m = 2.
    let term = derived::powerset_m(2, &Type::Nat);
    println!(
        "\npowerset₂ as a derived NRA term ({} AST nodes, level {}):",
        term.size(),
        term.level()
    );
    println!("  {term}");
}
