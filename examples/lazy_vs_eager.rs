//! The §3 caveat: the lower bound is tied to the *eager* strategy.
//!
//! > "it is not obvious whether it still holds for a lazy evaluation
//! > strategy."
//!
//! This example runs the powerset TC query under both strategies: the
//! eager complexity explodes as `2^Θ(n)` while the streaming strategy's
//! peak *resident* size stays polynomial — but the number of streamed
//! subsets (time) is still `2ⁿ`. Space can be traded away; work cannot.
//!
//! ```sh
//! cargo run --release --example lazy_vs_eager
//! ```

use powerset_tc::core::{queries, Value};
use powerset_tc::eval::{evaluate, evaluate_lazy, EvalConfig};

fn main() {
    let q = queries::tc_paths();
    let cfg = EvalConfig::default();
    println!(
        "{:>3} | {:>14} | {:>14} | {:>12} | {:>7}",
        "n", "eager space", "lazy resident", "subsets", "agree"
    );
    println!("{}", "-".repeat(62));
    for n in 2..=13u64 {
        let input = Value::chain(n);
        let eager = evaluate(&q, &input, &cfg);
        let lazy = evaluate_lazy(&q, &input, &cfg);
        let agree = eager.result.as_ref().unwrap() == lazy.result.as_ref().unwrap();
        println!(
            "{n:>3} | {:>14} | {:>14} | {:>12} | {:>7}",
            eager.stats.max_object_size,
            lazy.stats.peak_resident,
            lazy.stats.streamed_subsets,
            agree
        );
    }
    println!("\neager space doubles with every n (Theorem 4.1's regime); the streaming");
    println!("strategy keeps objects polynomial but still performs 2ⁿ subset evaluations.");
}
