//! Transitive closure three ways — the heart of the paper.
//!
//! Computes `tc(rₙ)` with (a) the powerset witness query (`2^Θ(n)`
//! space), (b) the naive Abiteboul–Beeri query (`2^Θ(n²)` space, tiny n
//! only), and (c) the `while` extension (polynomial), printing the §3
//! complexity of each so Theorem 4.1's separation is visible in one
//! table.
//!
//! ```sh
//! cargo run --release --example transitive_closure
//! ```

use powerset_tc::core::{queries, Value};
use powerset_tc::eval::{evaluate, EvalConfig, EvalError};

fn complexity_cell(q: &powerset_tc::core::Expr, n: u64, budget: u64) -> String {
    let cfg = EvalConfig::with_space_budget(budget);
    let ev = evaluate(q, &Value::chain(n), &cfg);
    match ev.result {
        Ok(v) => {
            assert_eq!(v, Value::chain_tc(n), "wrong closure at n={n}");
            format!("{}", ev.stats.max_object_size)
        }
        Err(EvalError::SpaceBudgetExceeded { required, .. }) => {
            format!(">{required} (budget)")
        }
        Err(e) => format!("error: {e}"),
    }
}

fn main() {
    println!("§3 complexity (size of the largest object in the derivation tree)");
    println!("of tc(rₙ), for the three constructions:\n");
    println!(
        "{:>3} | {:>16} | {:>22} | {:>12}",
        "n", "powerset paths", "powerset naive (A&B)", "while"
    );
    println!("{}", "-".repeat(66));
    let budget = 200_000_000;
    for n in 1..=12u64 {
        let paths = complexity_cell(&queries::tc_paths(), n, budget);
        let naive = if n <= 3 {
            complexity_cell(&queries::tc_naive(), n, budget)
        } else {
            // the candidate space powerset(V×V) has 2^{(n+1)²} elements —
            // report the prediction instead of materialising it
            let cfg = EvalConfig::with_space_budget(1_000);
            let ev = evaluate(&queries::tc_naive(), &Value::chain(n), &cfg);
            match ev.result {
                Err(EvalError::SpaceBudgetExceeded { required, .. }) => {
                    format!(">{:.2e}", required as f64)
                }
                _ => "-".to_string(),
            }
        };
        let whl = complexity_cell(&queries::tc_while(), n, budget);
        println!("{n:>3} | {paths:>16} | {naive:>22} | {whl:>12}");
    }

    println!("\nTheorem 4.1: every NRA(powerset) query computing tc(rₙ) costs Ω(2^cn);");
    println!("the while route (same expressive power) is polynomial — §1 of the paper.");
}
