//! Dense vs sorted set representation: the arena's packed-word bitmaps
//! (`SetRepr::Dense`) speed up transitive closure on serving-scale
//! graphs while interning *exactly* the handles the sorted merges
//! would — same `VId`, word-parallel arithmetic.
//!
//! ```sh
//! cargo run --release --example dense_demo
//! ```

use std::time::{Duration, Instant};

use nra_testkit::{graphs, Rng};
use powerset_tc::core::value::intern::{SetRepr, VId, ValueArena};
use powerset_tc::graph::tc_arena;

/// Close `edges` in a fresh arena with the dense path toggled; fresh
/// arenas keep the two timings honest (no warm intern hits leaking
/// from one route into the other).
fn close_fresh(edges: &[(u64, u64)], dense: bool) -> (Duration, usize) {
    let mut a = ValueArena::new();
    a.set_dense_enabled(dense);
    let rel = a.relation(edges.iter().copied());
    let start = Instant::now();
    let closure = tc_arena(&mut a, rel).expect("bounded-domain relation closes");
    (start.elapsed(), a.cardinality(closure).unwrap())
}

fn describe(a: &ValueArena, v: VId) -> String {
    match a.set_repr(v) {
        Some(SetRepr::Dense(sc)) => {
            format!("Dense {:?}, {} words", sc.shape(), sc.words().len())
        }
        Some(SetRepr::Sorted(items)) => format!("Sorted spine, {} elements", items.len()),
        None => "not a set".into(),
    }
}

fn main() {
    // Small relations stay sorted: the chain r₁₂ has 12 edges, below
    // the card gate where a packed domain would pay for itself.
    let mut a = ValueArena::new();
    let r12 = a.relation((0..12).map(|i| (i, i + 1)));
    a.prepare_dense(r12);
    println!("chain r₁₂ ({} edges): {}", 12, describe(&a, r12));

    // Serving-scale families: 512 nodes, the territory the dense layer
    // packs (domain bound well under DENSE_MAX_COORD).
    let mut rng = Rng::new(0xDE45E);
    println!(
        "\n{:<14} {:>5} {:>6} {:>8} {:>10} {:>10} {:>7}",
        "family", "n", "edges", "closure", "sorted", "dense", "dense×"
    );
    for g in graphs::large_family_graphs(&mut rng, 512) {
        let edges: Vec<(u64, u64)> = g.edges.iter().copied().collect();

        // Both routes through ONE arena: canonical dedup makes handle
        // equality the strongest possible agreement check.
        let mut a = ValueArena::new();
        a.set_dense_enabled(false);
        let rel = a.relation(edges.iter().copied());
        let sorted_closure = tc_arena(&mut a, rel).expect("closure");
        a.set_dense_enabled(true);
        let dense_closure = tc_arena(&mut a, rel).expect("closure");
        assert_eq!(
            sorted_closure, dense_closure,
            "{}: the two representations must intern the identical closure handle",
            g.family
        );
        // The word-parallel algebra itself, with the counters watching:
        // rel ⊆ rel⁺, so the union must come back as the closure handle.
        let before = a.dense_counters();
        let union = a.set_union(dense_closure, rel).expect("both are sets");
        assert_eq!(union, dense_closure, "{}: rel ∪ rel⁺ = rel⁺", g.family);
        let after = a.dense_counters();
        let (ops, promotions) = (after.0 - before.0, after.1 - before.1);

        // Timings from twin fresh arenas, one per representation.
        let (sorted_time, card) = close_fresh(&edges, false);
        let (dense_time, dense_card) = close_fresh(&edges, true);
        assert_eq!(card, dense_card);
        println!(
            "{:<14} {:>5} {:>6} {:>8} {:>9.1?} {:>9.1?} {:>6.2}x",
            g.family,
            512,
            edges.len(),
            card,
            sorted_time,
            dense_time,
            sorted_time.as_secs_f64() / dense_time.as_secs_f64().max(1e-12)
        );
        println!(
            "  domain bound {} · closure repr: {} · union took {} dense op(s), {} promotion(s)",
            a.dense_domain_cap(rel).expect("bounded nat-pair domain"),
            describe(&a, dense_closure),
            ops,
            promotions
        );
    }
    println!("\nSame handles, word-parallel arithmetic — the representation is invisible.");
}
