//! Quickstart: build an `NRA(powerset)` query, type-check it, evaluate it
//! under the paper's §3 eager semantics, and inspect the complexity
//! statistics and the derivation tree.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use powerset_tc::core::builder::*;
use powerset_tc::core::{output_type, Type, Value};
use powerset_tc::eval::{evaluate, evaluate_traced, EvalConfig};

fn main() {
    // The paper's chain r₃ = {(0,1), (1,2), (2,3)} as a complex object.
    let r3 = Value::chain(3);
    println!("input  r₃ = {r3}   (size {})", r3.size());

    // A tiny query: the node set of a relation, nodes(r) = π₁(r) ∪ π₂(r).
    let nodes = compose(union(), tuple(map(fst()), map(snd())));
    println!("\nquery  nodes = {nodes}");

    // Static typing: every expression denotes a function s → t.
    let ty = output_type(&nodes, &Type::nat_rel()).expect("well-typed");
    println!("type   {} -> {}", Type::nat_rel(), ty);

    // Eager evaluation with the §3 complexity instrumentation.
    let ev = evaluate(&nodes, &r3, &EvalConfig::default());
    println!("result {}", ev.result.as_ref().unwrap());
    println!(
        "stats  complexity (max object size) = {}, derivation nodes = {}, size sum = {}",
        ev.stats.max_object_size, ev.stats.nodes, ev.stats.total_size
    );

    // Now something exponential: powerset(r₃) has 2³ = 8 subsets.
    let ev = evaluate(&powerset(), &r3, &EvalConfig::default());
    let out = ev.result.unwrap();
    println!(
        "\npowerset(r₃): {} subsets, object size {} (predicted before materialisation)",
        out.cardinality().unwrap(),
        ev.stats.max_object_size
    );

    // The derivation tree of a small evaluation, rendered.
    let q = compose(is_empty(), map(sng()));
    let traced = evaluate_traced(&q, &Value::chain(1), &EvalConfig::default());
    println!("\nderivation tree of (empty ∘ map η)(r₁):");
    print!("{}", traced.result.unwrap().render(48));
}
