//! Proposition 4.3: the tractable fragment lives in `TC⁰`.
//!
//! Compiles the one-round TC step `r ∪ r∘r` (a polynomially-bounded `NRA`
//! query) to an unbounded fan-in circuit over growing domains, showing
//! constant depth and polynomial size, and cross-checks the circuit's
//! output wires against the `NRA` evaluator on the same relation. A
//! cardinality test shows where threshold gates (the `TC⁰` extra over
//! `AC⁰`) become necessary.
//!
//! ```sh
//! cargo run --example circuit_compile
//! ```

use powerset_tc::circuits::relalg::{self, compile_bool};
use powerset_tc::circuits::{compile, BoolQuery, FlatQuery};
use std::collections::BTreeSet;

fn main() {
    let q = relalg::tc_step_query();
    println!("query: r ∪ π₀,₃(σ₁₌₂(r × r))   (one TC round)\n");
    println!(
        "{:>3} | {:>8} | {:>6} | {:>10} | {:>9}",
        "d", "wires", "depth", "gates", "agrees"
    );
    println!("{}", "-".repeat(48));
    for d in [2u64, 3, 4, 6, 8, 12] {
        let compiled = compile(&q, &[2], d);
        // chain over the domain
        let rel: BTreeSet<Vec<u64>> = (0..d - 1).map(|i| vec![i, i + 1]).collect();
        let circuit_out = compiled.run(std::slice::from_ref(&rel));
        // NRA evaluator on the same relation
        let edges: BTreeSet<(u64, u64)> = rel.iter().map(|t| (t[0], t[1])).collect();
        let (nra_out, circ_out2) = powerset_tc::circuits::bridge::run_both(
            &powerset_tc::circuits::bridge::tc_step_bridge(),
            &edges,
            d,
        );
        assert_eq!(
            circ_out2,
            circuit_out.iter().map(|t| (t[0], t[1])).collect()
        );
        println!(
            "{d:>3} | {:>8} | {:>6} | {:>10} | {:>9}",
            compiled.circuit.num_inputs,
            compiled.circuit.depth(),
            compiled.circuit.size(),
            nra_out == circ_out2,
        );
    }
    println!("\ndepth is constant while size grows polynomially in d: the query is in AC⁰ ⊆ TC⁰.");

    println!("\nboolean queries and the threshold frontier:");
    let d = 4;
    for (name, q) in [
        (
            "empty(σ₀₌₁ r)        ",
            BoolQuery::IsEmpty(FlatQuery::SelectEq(Box::new(FlatQuery::Input(0, 2)), 0, 1)),
        ),
        (
            "|r| ≥ 5              ",
            BoolQuery::CardAtLeast(FlatQuery::Input(0, 2), 5),
        ),
        (
            "r ⊆ r∘r              ",
            BoolQuery::Subset(FlatQuery::Input(0, 2), relalg::join_query()),
        ),
    ] {
        let compiled = compile_bool(&q, &[2], d);
        println!(
            "  {name} depth {}, gates {:>4}, threshold gates needed: {}",
            compiled.circuit.depth(),
            compiled.circuit.size(),
            compiled.circuit.uses_threshold()
        );
    }
    println!("\ncounting (cardinality) is exactly what AC⁰ lacks and TC⁰ adds — the");
    println!("gate class the paper needs for Prop 4.3.");
}
