//! Sessions, warm starts, and batch evaluation: the owned engine layer.
//!
//! The free functions (`evaluate`, …) run against thread-local arenas
//! and open a fresh apply-cache epoch per call. An `EvalSession` owns
//! the arenas, the `(EId, VId)` apply cache, and the config — so
//! repeated queries **warm-start**, residency can be bounded with
//! generation-based eviction, and batches fan out across worker
//! sessions on scoped threads.
//!
//! ```sh
//! cargo run --release --example session_warmstart
//! ```

use powerset_tc::core::{queries, Value};
use powerset_tc::eval::{eval_batch, EvalConfig, EvalSession};
use std::time::Instant;

fn main() {
    // --- cross-query warm starts --------------------------------------
    let mut session = EvalSession::new(EvalConfig::optimised());
    let input = Value::chain(12);

    let t = Instant::now();
    let cold = session.eval(&queries::tc_while(), &input);
    let cold_wall = t.elapsed();
    let closure = cold.result.unwrap();
    println!(
        "cold  tc_while(r₁₂): {} edges in {:?}  ({} derivation nodes)",
        closure.cardinality().unwrap(),
        cold_wall,
        cold.stats.nodes
    );

    let t = Instant::now();
    let warm = session.eval(&queries::tc_while(), &input);
    let warm_wall = t.elapsed();
    assert_eq!(warm.result.unwrap(), closure);
    println!(
        "warm  tc_while(r₁₂): same closure in {:?}  ({} memo hits, {} warm, {} nodes)",
        warm_wall, warm.stats.memo_hits, warm.stats.warm_hits, warm.stats.nodes
    );
    println!(
        "      the arenas and the (EId, VId) apply cache survived the query boundary:\n      \
         session holds ~{} KiB across {} queries ({} warm hits total)",
        session.approx_resident_bytes() / 1024,
        session.stats().queries,
        session.stats().warm_hits
    );

    // --- parallel batch evaluation ------------------------------------
    let q = session.intern_expr(&queries::tc_while());
    let jobs: Vec<_> = (4..12u64)
        .map(|n| (q, session.values_mut().chain(n)))
        .collect();
    let t = Instant::now();
    let results = eval_batch(&mut session, &jobs, 4);
    println!(
        "\nbatch: {} closure queries over 4 worker sessions in {:?}",
        results.len(),
        t.elapsed()
    );
    for (n, ev) in (4..12u64).zip(&results) {
        let expect = session.values_mut().chain_tc(n);
        assert_eq!(*ev.result.as_ref().unwrap(), expect);
    }
    println!("       every result re-interned canonically — bit-for-bit the sequential answers");

    // --- bounded residency: generation-based eviction ------------------
    let mut bounded = EvalSession::with_resident_budget(EvalConfig::optimised(), 64 * 1024);
    for round in 0..3 {
        let ev = bounded.eval(&queries::tc_while(), &Value::chain(10));
        assert!(ev.result.is_ok());
        println!(
            "bounded session, round {round}: generation {}, ~{} KiB resident, {} evictions",
            bounded.generation(),
            bounded.approx_resident_bytes() / 1024,
            bounded.stats().evictions
        );
    }
    println!("eviction trades warmth for memory — results never change, only cache hits do");
}
