//! Serve demo: a multi-tenant serving loop with cost-based admission.
//!
//! Spawns the `nra-serve` server on its own thread, connects two
//! tenants over the newline-delimited wire, and submits a mixed
//! workload:
//!
//! * polynomial queries (`tc_while`, `tc_step`, `compose_rel`) — admitted
//!   by class (§4 upper bound) and answered;
//! * the powerset-route `tc_paths` on a small chain — admitted because
//!   its concretely-priced powerset site fits under the ceiling;
//! * the same `tc_paths` on a long chain — rejected as submitted, then
//!   **rescued**: the optimiser rewrites it to the polynomial while
//!   route, admission re-predicts, and the query is answered;
//! * a bare `powerset` on the same long chain — nothing to rewrite, so
//!   it is **rejected before evaluation** with a reason citing the
//!   Theorem 4.1 lower bound.
//!
//! Run with `cargo run --release --example serve_demo`.

use powerset_tc::core::{builder, queries, Value};
use powerset_tc::serve::{spawn, Outcome, ServeConfig};

fn main() {
    let (mut client, handle) = spawn(ServeConfig::default());

    let workload: Vec<(&str, &str, powerset_tc::core::Expr, Value)> = vec![
        (
            "alice",
            "tc_while(chain_9)",
            queries::tc_while(),
            Value::chain(9),
        ),
        (
            "alice",
            "tc_step(chain_9)",
            queries::tc_step(),
            Value::chain(9),
        ),
        (
            "bob",
            "tc_while(chain_9)",
            queries::tc_while(),
            Value::chain(9),
        ),
        (
            "bob",
            "compose_rel(chain_7)",
            queries::compose_rel(),
            Value::chain(7),
        ),
        (
            "alice",
            "tc_paths(chain_5)",
            queries::tc_paths(),
            Value::chain(5),
        ),
        (
            "bob",
            "tc_paths(chain_24)",
            queries::tc_paths(),
            Value::chain(24),
        ),
        (
            "bob",
            "powerset(chain_24)",
            builder::powerset(),
            Value::chain(24),
        ),
    ];

    println!("── submitting {} queries from 2 tenants ──", workload.len());
    for (id, (tenant, label, query, input)) in workload.iter().enumerate() {
        client
            .submit(tenant, id as u64, query, input)
            .expect("submit");
        println!("  [{tenant}:{id}] {label}");
    }

    println!("\n── responses ──");
    for _ in 0..workload.len() {
        let resp = client.recv().expect("server alive").expect("decode");
        let label = workload[resp.id as usize].1;
        match resp.outcome {
            Outcome::Ok {
                declared_budget,
                value,
            } => println!(
                "  [{}:{}] {label}: OK — {} closure edges, within declared budget {declared_budget}",
                resp.tenant,
                resp.id,
                match &value {
                    Value::Set(edges) => edges.len(),
                    _ => 0,
                },
            ),
            Outcome::Rejected { reason } => {
                println!("  [{}:{}] {label}: REJECTED — {reason}", resp.tenant, resp.id)
            }
            Outcome::Failed { detail } => {
                println!("  [{}:{}] {label}: FAILED — {detail}", resp.tenant, resp.id)
            }
        }
    }

    client.shutdown().expect("shutdown frame");
    let report = handle.join().expect("server thread");

    println!("\n── serving report ──");
    println!(
        "  batches={} frames={} admitted={} completed={} rejected(exponential)={} rescued={}",
        report.batches,
        report.frames,
        report.admitted,
        report.completed,
        report.rejected_exponential,
        report.rescued
    );
    for (tenant, stats) in &report.tenants {
        println!(
            "  tenant {tenant}: submitted={} admitted={} completed={} warm_hits={} bytes={}",
            stats.submitted, stats.admitted, stats.completed, stats.warm_hits, stats.total_bytes
        );
    }
    assert!(
        report.rejected_exponential >= 1,
        "demo must show a rejection"
    );
    assert!(
        report.rescued >= 1,
        "demo must show a powerset-route rescue"
    );
    assert!(report.completed >= 5, "demo must show completions");
}
