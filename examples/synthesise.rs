//! Regenerate `RULES.json`: seed rules plus freshly synthesised ones.
//!
//! Runs the ruler-style enumerate → fingerprint → verify → admit loop
//! of `nra-opt/src/synth.rs` at the default size and prints the full
//! `RULES.json` document — the shipped file's `synthesised` section is
//! exactly this output (`tests/rules.rs` and CI hold the two in sync by
//! re-verifying every shipped rule against the same oracle).
//!
//! Run with `cargo run --release --example synthesise > RULES.json`.

use powerset_tc::opt::{rules_to_json, synthesise, RuleKind, RuleSet, SynthConfig};

fn main() {
    let shipped = RuleSet::from_json(powerset_tc::opt::EMBEDDED_RULES)
        .expect("the shipped RULES.json validates");
    let mut rules: Vec<_> = shipped
        .rules()
        .iter()
        .filter(|r| r.kind == RuleKind::Seed)
        .cloned()
        .collect();

    let synthesised = synthesise(&SynthConfig::default());
    eprintln!(
        "synthesis admitted {} rule(s) at max size {}",
        synthesised.len(),
        SynthConfig::default().max_size
    );
    for r in &synthesised {
        eprintln!("  {}: {} => {}", r.name, r.lhs, r.rhs);
    }
    rules.extend(synthesised);

    print!("{}", rules_to_json(&rules));
}
